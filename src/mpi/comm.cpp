#include "mpi/comm.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <tuple>

namespace e10::mpi {

namespace {
/// Wire size of the message envelope (header) charged on top of payload.
constexpr Offset kEnvelopeBytes = 64;

int log2_stages(int p) {
  if (p <= 1) return 0;
  return static_cast<int>(
      std::bit_width(static_cast<unsigned>(p - 1)));  // ceil(log2 p)
}
}  // namespace

// ---------------------------------------------------------------------------
// Comm facade
// ---------------------------------------------------------------------------

int Comm::size() const { return state_->size(); }

std::size_t Comm::node() const { return state_->node_of(rank_); }

std::size_t Comm::node_of(int rank) const { return state_->node_of(rank); }

int Comm::node_leader(int rank) const { return state_->node_leader(rank); }

std::vector<int> Comm::node_ranks(std::size_t node) const {
  return state_->node_ranks(node);
}

std::size_t Comm::max_ranks_per_node() const {
  return state_->max_ranks_per_node();
}

sim::Engine& Comm::engine() const { return state_->engine(); }

const std::string& Comm::name() const { return state_->name(); }

Request Comm::isend(int dst, int tag, std::any payload, Offset bytes) const {
  return state_->isend(rank_, dst, tag, std::move(payload), bytes);
}

Request Comm::irecv(int src, int tag) const {
  return state_->irecv(rank_, src, tag);
}

void Comm::send(int dst, int tag, std::any payload, Offset bytes) const {
  Request r = isend(dst, tag, std::move(payload), bytes);
  r.wait();
}

Packet Comm::recv(int src, int tag) const {
  Request r = irecv(src, tag);
  r.wait();
  return r.packet();
}

void Comm::barrier() const {
  (void)run_collective(Kind::barrier, std::any(), 0);
}

std::shared_ptr<const std::vector<std::any>> Comm::run_collective(
    Kind kind, std::any contribution, Offset bytes) const {
  return state_->collective(rank_, kind, std::move(contribution), bytes);
}

void Comm::alltoall_counts(const std::vector<Offset>& send,
                           std::vector<Offset>& recv) const {
  state_->alltoall_counts(rank_, send, recv);
}

void Comm::alltoall_counts(const std::vector<std::pair<int, Offset>>& send,
                           std::vector<Offset>* recv) const {
  state_->alltoall_counts_sparse(rank_, send, recv);
}

Comm Comm::split(int color, int key) const {
  int new_rank = -1;
  auto child = state_->split_child(rank_, color, key, &new_rank);
  if (child == nullptr) return Comm();  // undefined color (MPI_UNDEFINED)
  return Comm(std::move(child), new_rank);
}

Comm Comm::dup() const {
  auto child = state_->dup_child(rank_);
  return Comm(std::move(child), rank_);
}

// ---------------------------------------------------------------------------
// CommState
// ---------------------------------------------------------------------------

CommState::CommState(sim::Engine& engine, net::Fabric& fabric,
                     std::vector<std::size_t> rank_nodes, MpiParams params,
                     std::string name)
    : engine_(engine),
      fabric_(fabric),
      rank_nodes_(std::move(rank_nodes)),
      params_(params),
      name_(std::move(name)),
      queues_(rank_nodes_.size()),
      coll_seq_(rank_nodes_.size(), 0) {
  if (rank_nodes_.empty()) {
    throw std::logic_error("CommState with zero ranks");
  }
}

std::size_t CommState::node_of(int rank) const {
  if (rank < 0 || rank >= size()) {
    throw std::logic_error("CommState::node_of: rank out of range");
  }
  return rank_nodes_[static_cast<std::size_t>(rank)];
}

int CommState::node_leader(int rank) const {
  const std::size_t node = node_of(rank);
  for (int r = 0; r <= rank; ++r) {
    if (rank_nodes_[static_cast<std::size_t>(r)] == node) return r;
  }
  return rank;  // unreachable: rank itself is on the node
}

std::vector<int> CommState::node_ranks(std::size_t node) const {
  std::vector<int> out;
  for (int r = 0; r < size(); ++r) {
    if (rank_nodes_[static_cast<std::size_t>(r)] == node) out.push_back(r);
  }
  return out;
}

std::size_t CommState::max_ranks_per_node() const {
  std::map<std::size_t, std::size_t> counts;
  for (const std::size_t node : rank_nodes_) ++counts[node];
  std::size_t best = 0;
  for (const auto& [node, count] : counts) best = std::max(best, count);
  return best;
}

bool CommState::matches(const PendingRecv& recv, const Packet& packet) {
  return (recv.src == kAnySource || recv.src == packet.src) &&
         (recv.tag == kAnyTag || recv.tag == packet.tag);
}

Request CommState::isend(int src, int dst, int tag, std::any payload,
                         Offset bytes) {
  if (dst < 0 || dst >= size()) {
    throw std::logic_error("isend: destination rank out of range");
  }
  if (bytes < 0) throw std::logic_error("isend: negative byte count");
  ++p2p_messages_;

  const Time now = engine_.now();
  const net::Fabric::TransferTimes times = fabric_.transfer_times(
      node_of(src), node_of(dst), kEnvelopeBytes + bytes, now);

  Packet packet;
  packet.src = src;
  packet.tag = tag;
  packet.bytes = bytes;
  packet.payload = std::move(payload);

  auto send_state = std::make_shared<Request::State>(engine_);
  const bool eager = bytes <= params_.eager_threshold;

  // The send call is the causal source of the matched receive's completion
  // (and of the sender's own tx-done wait); the in-flight latency carries
  // the NIC queueing the cost model charged.
  sim::CausalToken cause = 0;
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && engine_.in_process()) {
    cause = causal->emit(sim::EdgeKind::message, engine_.current(), now,
                         times.queued);
  }
  send_state->cause = cause;

  RankQueues& dst_queues = queues_[static_cast<std::size_t>(dst)];
  // Look for an already-posted matching receive (FIFO post order).
  for (auto it = dst_queues.posted.begin(); it != dst_queues.posted.end();
       ++it) {
    if (matches(*it, packet)) {
      const Time completion = times.arrival;
      it->state->packet = std::move(packet);
      it->state->has_packet = true;
      it->state->cause = cause;
      it->state->done.set_at(completion);
      send_state->done.set_at(eager ? times.tx_done : completion);
      dst_queues.posted.erase(it);
      return Request(std::move(send_state));
    }
  }

  // No receive posted yet: queue as unexpected. Eager sends complete at
  // tx-done (buffered); rendezvous sends stay open until matched.
  PendingMsg msg;
  msg.packet = std::move(packet);
  msg.arrival = times.arrival;
  msg.cause = cause;
  if (eager) {
    send_state->done.set_at(times.tx_done);
  } else {
    msg.send_state = send_state;
  }
  dst_queues.unexpected.push_back(std::move(msg));
  return Request(std::move(send_state));
}

Request CommState::irecv(int dst, int src, int tag) {
  if (src != kAnySource && (src < 0 || src >= size())) {
    throw std::logic_error("irecv: source rank out of range");
  }
  auto recv_state = std::make_shared<Request::State>(engine_);
  PendingRecv pending{recv_state, src, tag};

  RankQueues& my_queues = queues_[static_cast<std::size_t>(dst)];
  for (auto it = my_queues.unexpected.begin();
       it != my_queues.unexpected.end(); ++it) {
    if (matches(pending, it->packet)) {
      const Time completion = std::max(engine_.now(), it->arrival);
      recv_state->packet = std::move(it->packet);
      recv_state->has_packet = true;
      recv_state->cause = it->cause;
      recv_state->done.set_at(completion);
      if (it->send_state != nullptr) {
        // Rendezvous sender completes when the receiver drains the message;
        // the receiver posting this irecv is what released it.
        if (sim::CausalObserver* causal = engine_.causal_observer();
            causal != nullptr && engine_.in_process()) {
          it->send_state->cause = causal->emit(
              sim::EdgeKind::message, engine_.current(), engine_.now());
        }
        it->send_state->done.set_at(completion);
      }
      my_queues.unexpected.erase(it);
      return Request(std::move(recv_state));
    }
  }
  my_queues.posted.push_back(std::move(pending));
  return Request(std::move(recv_state));
}

Time CommState::collective_cost(Comm::Kind kind, Offset max_bytes) const {
  const int stages = log2_stages(size());
  const auto ser = [&](Offset bytes) -> Time {
    return static_cast<Time>(
        static_cast<double>(bytes) * 1e9 /
        static_cast<double>(params_.coll_bytes_per_second));
  };
  switch (kind) {
    case Comm::Kind::barrier:
      return stages * params_.coll_alpha;
    case Comm::Kind::allreduce:
    case Comm::Kind::reduce:
      return stages * (params_.coll_alpha + ser(max_bytes));
    case Comm::Kind::bcast:
      return stages * params_.coll_alpha + ser(max_bytes);
    case Comm::Kind::allgather:
    case Comm::Kind::gather:
      return stages * params_.coll_alpha + ser(max_bytes * size());
    case Comm::Kind::alltoall:
      // max_bytes is already the per-rank total (bytes_each * p).
      return stages * params_.coll_alpha + ser(max_bytes);
  }
  return 0;
}

CommState::CollOp& CommState::collective_slot(int rank, Comm::Kind kind) {
  const std::uint64_t gen = coll_seq_[static_cast<std::size_t>(rank)]++;
  if (gen < coll_base_) {
    throw std::logic_error("collective slot retired before all ranks joined");
  }
  const std::size_t idx = static_cast<std::size_t>(gen - coll_base_);
  if (idx > coll_ops_.size()) {
    // A rank can only reach sequence g after joining g-1 itself, so slots
    // are created densely in order; a gap means sequence corruption.
    throw std::logic_error("collective sequence gap on comm '" + name_ + "'");
  }
  if (idx == coll_ops_.size()) {
    coll_ops_.emplace_back(engine_);
    coll_ops_.back().kind = kind;
    ++coll_ops_started_;
  }
  CollOp& op = coll_ops_[idx];
  if (op.kind != kind) {
    throw std::logic_error(
        "collective mismatch on comm '" + name_ +
        "': ranks issued different collective operations at the same step");
  }
  return op;
}

void CommState::complete_arrival(CollOp& op, Offset bytes) {
  op.max_arrival = std::max(op.max_arrival, engine_.now());
  op.max_bytes = std::max(op.max_bytes, bytes);
  ++op.arrived;
  if (op.arrived == static_cast<std::size_t>(size())) {
    // Last arriver: everyone leaves at max arrival + modeled tree cost.
    const Time release =
        op.max_arrival + collective_cost(op.kind, op.max_bytes);
    if (!op.typed) {
      op.result = std::make_shared<std::vector<std::any>>(
          std::move(op.contributions));
    }
    // Every released participant was gated on the last arriver — the
    // collective straggler edge the critical-path walk follows.
    if (sim::CausalObserver* causal = engine_.causal_observer();
        causal != nullptr && engine_.in_process()) {
      op.cause = causal->emit(sim::EdgeKind::collective, engine_.current(),
                              release);
    }
    op.release.set_at(release);
  }
}

void CommState::await_release(CollOp& op) {
  const Time before = engine_.now();
  op.release.wait();
  if (sim::CausalObserver* causal = engine_.causal_observer();
      causal != nullptr && op.cause != 0 && engine_.now() > before) {
    causal->ack(op.cause, engine_.current(), engine_.now());
  }
}

void CommState::depart(CollOp& op) {
  ++op.departed;
  const auto p = static_cast<std::size_t>(size());
  // Ranks depart op g before joining g+1, so full departure happens in
  // sequence order and only the front ever retires.
  while (!coll_ops_.empty() && coll_ops_.front().departed == p) {
    if (coll_ops_.front().typed) {
      counts_pool_.push_back(std::move(coll_ops_.front().counts));
    }
    coll_ops_.pop_front();
    ++coll_base_;
  }
}

std::vector<CommState::CountEntry> CommState::acquire_counts() {
  if (!counts_pool_.empty()) {
    std::vector<CountEntry> counts = std::move(counts_pool_.back());
    counts_pool_.pop_back();
    counts.clear();
    return counts;
  }
  return {};
}

CommState::CollOp& CommState::join_counts(int rank) {
  CollOp& op = collective_slot(rank, Comm::Kind::alltoall);
  if (op.arrived == 0) {
    op.typed = true;
    op.counts = acquire_counts();
  } else if (!op.typed) {
    throw std::logic_error("collective mismatch on comm '" + name_ +
                           "': typed and generic alltoall at the same step");
  }
  return op;
}

void CommState::extract_counts(const CollOp& op, int rank,
                               std::vector<Offset>& recv) {
  recv.assign(static_cast<std::size_t>(size()), 0);
  for (const CountEntry& entry : op.counts) {
    if (entry.dst == rank) {
      recv[static_cast<std::size_t>(entry.src)] = entry.bytes;
    }
  }
}

std::shared_ptr<const std::vector<std::any>> CommState::collective(
    int rank, Comm::Kind kind, std::any contribution, Offset bytes) {
  CollOp& op = collective_slot(rank, kind);
  if (op.typed) {
    throw std::logic_error("collective mismatch on comm '" + name_ +
                           "': typed and generic alltoall at the same step");
  }
  if (op.arrived == 0) {
    op.contributions.resize(static_cast<std::size_t>(size()));
  }
  op.contributions[static_cast<std::size_t>(rank)] = std::move(contribution);
  complete_arrival(op, bytes);
  await_release(op);
  std::shared_ptr<const std::vector<std::any>> result = op.result;
  depart(op);
  return result;
}

void CommState::alltoall_counts(int rank, const std::vector<Offset>& send,
                                std::vector<Offset>& recv) {
  const auto p = static_cast<std::size_t>(size());
  if (send.size() != p) {
    throw std::logic_error("alltoall: sendbuf size != comm size");
  }
  CollOp& op = join_counts(rank);
  for (std::size_t i = 0; i < p; ++i) {
    if (send[i] != 0) {
      op.counts.push_back(CountEntry{rank, static_cast<int>(i), send[i]});
    }
  }
  complete_arrival(op, static_cast<Offset>(sizeof(Offset)) * size());
  await_release(op);
  extract_counts(op, rank, recv);
  depart(op);
}

void CommState::alltoall_counts_sparse(
    int rank, const std::vector<std::pair<int, Offset>>& send,
    std::vector<Offset>* recv) {
  CollOp& op = join_counts(rank);
  for (const auto& [dst, bytes] : send) {
    if (dst < 0 || dst >= size()) {
      throw std::logic_error("alltoall: destination rank out of range");
    }
    op.counts.push_back(CountEntry{rank, dst, bytes});
  }
  complete_arrival(op, static_cast<Offset>(sizeof(Offset)) * size());
  await_release(op);
  if (recv != nullptr) {
    extract_counts(op, rank, *recv);
  }
  depart(op);
}

std::shared_ptr<CommState> CommState::split_child(int caller_rank, int color,
                                                  int key, int* new_rank) {
  // The collective sequence number identifies this split so that all ranks
  // agree on which child registry entry to use.
  const std::uint64_t gen = coll_seq_[static_cast<std::size_t>(caller_rank)];
  const auto contribs = collective(
      caller_rank, Comm::Kind::allgather,
      std::any(std::tuple<int, int>(color, key)), sizeof(int) * 2);

  if (color < 0) {  // MPI_UNDEFINED-style: caller not in any child
    *new_rank = -1;
    return nullptr;
  }

  // Deterministic membership: ranks with my color, ordered by (key, rank).
  std::vector<std::pair<int, int>> members;  // (key, old rank)
  for (int r = 0; r < size(); ++r) {
    const auto [c, k] =
        std::any_cast<const std::tuple<int, int>&>((*contribs)[static_cast<std::size_t>(r)]);
    if (c == color) members.emplace_back(k, r);
  }
  std::sort(members.begin(), members.end());

  auto& registry = children_[gen];
  auto it = registry.find(color);
  if (it == registry.end()) {
    std::vector<std::size_t> nodes;
    nodes.reserve(members.size());
    for (const auto& [k, r] : members) nodes.push_back(node_of(r));
    auto child = std::make_shared<CommState>(
        engine_, fabric_, std::move(nodes), params_,
        name_ + ".split" + std::to_string(next_child_id_++) + ".c" +
            std::to_string(color));
    it = registry.emplace(color, std::move(child)).first;
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].second == caller_rank) {
      *new_rank = static_cast<int>(i);
      break;
    }
  }
  return it->second;
}

std::shared_ptr<CommState> CommState::dup_child(int caller_rank) {
  const std::uint64_t gen = coll_seq_[static_cast<std::size_t>(caller_rank)];
  (void)collective(caller_rank, Comm::Kind::barrier, std::any(), 0);
  auto& registry = children_[gen];
  auto it = registry.find(0);
  if (it == registry.end()) {
    auto child = std::make_shared<CommState>(
        engine_, fabric_, rank_nodes_, params_,
        name_ + ".dup" + std::to_string(next_child_id_++));
    it = registry.emplace(0, std::move(child)).first;
  }
  return it->second;
}

}  // namespace e10::mpi
