// Flattened MPI datatypes for file views.
//
// ROMIO flattens every filetype into an (offset, length) block list; this
// class is that flattened representation directly. A FlatType describes one
// "instance" of the type: `blocks()` are the bytes it touches within a span
// of `extent()` bytes; writing more than size() bytes tiles instances one
// extent apart (MPI file view semantics with etype = byte).
#pragma once

#include <vector>

#include "common/dataview.h"
#include "common/extent.h"
#include "common/units.h"

namespace e10::mpi {

/// One piece of an I/O operation: these file bytes get this data.
struct IoPiece {
  Extent file;
  DataView data;
};

class FlatType {
 public:
  /// A contiguous run of `bytes`.
  static FlatType contiguous(Offset bytes);

  /// `count` blocks of `block_bytes`, strides of `stride_bytes` apart
  /// (MPI_Type_vector with byte units).
  static FlatType vector(Offset count, Offset block_bytes,
                         Offset stride_bytes);

  /// Explicit block list within an instance of span `extent`
  /// (MPI_Type_indexed). Blocks must be non-overlapping; they are sorted.
  static FlatType indexed(std::vector<Extent> blocks, Offset extent);

  /// C-order N-dimensional subarray: the file bytes of the
  /// `subsizes`-shaped box at `starts` inside a `sizes`-shaped array of
  /// `elem_bytes`-byte elements (MPI_Type_create_subarray). This is the view
  /// coll_perf and Flash-IO build.
  static FlatType subarray(const std::vector<Offset>& sizes,
                           const std::vector<Offset>& subsizes,
                           const std::vector<Offset>& starts,
                           Offset elem_bytes);

  /// Bytes of data one instance holds (sum of block lengths).
  Offset size() const { return size_; }

  /// File span of one instance.
  Offset extent() const { return extent_; }

  const std::vector<Extent>& blocks() const { return blocks_; }

  bool is_contiguous() const {
    return blocks_.size() == 1 && blocks_[0].offset == 0 &&
           blocks_[0].length == extent_;
  }

  /// File extents touched by the data-stream range
  /// [stream_offset, stream_offset + nbytes) of a view anchored at file
  /// displacement `disp`. The data stream is the concatenation of instance
  /// blocks in file order (how MPI maps a contiguous user buffer through a
  /// view). Returned extents are in file order.
  std::vector<Extent> file_extents(Offset disp, Offset stream_offset,
                                   Offset nbytes) const;

  /// Zips file_extents() with slices of `data`: piece i carries the bytes of
  /// the data stream that land in extent i.
  std::vector<IoPiece> map_data(Offset disp, Offset stream_offset,
                                const DataView& data) const;

 private:
  FlatType(std::vector<Extent> blocks, Offset extent);

  std::vector<Extent> blocks_;  // sorted, non-overlapping, within extent
  Offset extent_ = 0;
  Offset size_ = 0;
};

}  // namespace e10::mpi
