// Process placement: which fabric node hosts each MPI rank.
//
// Ranks are placed block-wise (ranks [k*ppn, (k+1)*ppn) on node k), matching
// the paper's "512 MPI processes distributed over 64 nodes (8 procs/node)".
// The node_of/node_leader/node_ranks helpers are the one place the block
// placement arithmetic lives; layers above must not hand-roll
// `rank / ranks_per_node`.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace e10::mpi {

class Topology {
 public:
  Topology(std::size_t nodes, std::size_t ranks_per_node)
      : nodes_(nodes), ranks_per_node_(ranks_per_node) {
    if (nodes == 0 || ranks_per_node == 0) {
      throw std::logic_error("Topology: nodes and ranks_per_node must be > 0");
    }
  }

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] std::size_t ranks_per_node() const { return ranks_per_node_; }
  [[nodiscard]] std::size_t ranks() const { return nodes_ * ranks_per_node_; }

  [[nodiscard]] std::size_t node_of(int rank) const {
    if (rank < 0 || static_cast<std::size_t>(rank) >= ranks()) {
      throw std::logic_error("Topology::node_of: rank out of range");
    }
    return static_cast<std::size_t>(rank) / ranks_per_node_;
  }

  /// Lowest rank hosted on the same node as `rank` — the node's leader in
  /// the two-level aggregation protocol (docs/two_level.md).
  [[nodiscard]] int node_leader(int rank) const {
    return static_cast<int>(node_of(rank) * ranks_per_node_);
  }

  /// Ranks hosted on `node`, in rank order. The first entry is the node
  /// leader.
  [[nodiscard]] std::vector<int> node_ranks(std::size_t node) const {
    if (node >= nodes_) {
      throw std::logic_error("Topology::node_ranks: bad node");
    }
    std::vector<int> out;
    out.reserve(ranks_per_node_);
    for (std::size_t i = 0; i < ranks_per_node_; ++i) {
      out.push_back(static_cast<int>(node * ranks_per_node_ + i));
    }
    return out;
  }

  /// Ranks hosted on `node`, in rank order.
  [[nodiscard]] std::vector<int> ranks_on(std::size_t node) const {
    return node_ranks(node);
  }

 private:
  std::size_t nodes_;
  std::size_t ranks_per_node_;
};

}  // namespace e10::mpi
