// MPI world: creates COMM_WORLD over a topology and launches one simulated
// process per rank.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpi/comm.h"
#include "mpi/topology.h"
#include "net/fabric.h"
#include "sim/engine.h"

namespace e10::mpi {

class World {
 public:
  World(sim::Engine& engine, net::Fabric& fabric, Topology topology,
        MpiParams params = {});

  /// Spawns one simulated process per rank running `rank_main(comm)`.
  /// Call Engine::run() afterwards to execute them.
  void launch(std::function<void(Comm)> rank_main);

  /// COMM_WORLD facade for a specific rank (for hand-wired tests).
  Comm comm(int rank) const;

  const Topology& topology() const { return topology_; }
  int size() const { return static_cast<int>(topology_.ranks()); }

 private:
  sim::Engine& engine_;
  Topology topology_;
  std::shared_ptr<CommState> world_state_;
};

}  // namespace e10::mpi
