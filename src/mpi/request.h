// MPI request objects: handles for nonblocking point-to-point operations and
// user-completed generalized requests (MPI_Grequest — the mechanism the E10
// cache layer uses to track in-flight cache-to-PFS synchronisation, paper
// §III-A).
#pragma once

#include <any>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/causal.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace e10::mpi {

/// Envelope + payload of a point-to-point message. The payload is type-
/// erased; `bytes` is what the cost model charges.
struct Packet {
  int src = -1;
  int tag = 0;
  Offset bytes = 0;
  std::any payload;
};

/// [[nodiscard]]: a dropped request handle is a lost completion — an
/// isend/irecv/grequest that can never be waited on or completed leaves
/// its peer hanging (enforced tree-wide with -Werror=unused-result and the
/// e10_lint nodiscard rule, docs/static_analysis.md).
class [[nodiscard]] Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the operation completes; advances the caller's clock to
  /// the completion time. (MPI_Wait)
  void wait();

  /// Nonblocking completion check. (MPI_Test without status)
  [[nodiscard]] bool test() const;

  /// For completed receive requests: the delivered packet.
  const Packet& packet() const;

  /// Creates a generalized request (MPI_Grequest_start): completed later by
  /// complete() / complete_at().
  static Request grequest(sim::Engine& engine);

  /// Completes a generalized request now (MPI_Grequest_complete).
  void complete();

  /// Completes a generalized request at virtual time `at` — how an
  /// asynchronous agent (the cache sync thread) publishes its completion
  /// time without blocking.
  void complete_at(Time at);

  /// Waits on all requests; the caller's clock ends at the max completion.
  static void wait_all(std::vector<Request>& requests);

 private:
  friend class CommState;

  struct State {
    explicit State(sim::Engine& engine) : done(engine) {}
    sim::SimEvent done;
    Packet packet;
    bool has_packet = false;
    /// Causal emission this request's completion stems from (0 = none).
    sim::CausalToken cause = 0;
  };

  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace e10::mpi
