// MPI_Info analog: the string key/value object that carries MPI-IO hints
// (Tables I and II of the paper) into MPI_File_open.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace e10::mpi {

class Info {
 public:
  Info() = default;

  void set(std::string key, std::string value) {
    entries_[std::move(key)] = std::move(value);
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  std::string get_or(const std::string& key, std::string fallback) const {
    return get(key).value_or(std::move(fallback));
  }

  bool has(const std::string& key) const { return entries_.contains(key); }

  void erase(const std::string& key) { entries_.erase(key); }

  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [k, v] : entries_) out.push_back(k);
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Merge: entries from `other` overwrite this object's entries.
  void merge(const Info& other) {
    for (const auto& [k, v] : other.entries_) entries_[k] = v;
  }

  friend bool operator==(const Info&, const Info&) = default;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace e10::mpi
