#include "mpi/request.h"

#include <stdexcept>

namespace e10::mpi {

void Request::wait() {
  if (!valid()) throw std::logic_error("wait on invalid Request");
  sim::Engine& engine = state_->done.engine();
  const Time before = engine.now();
  state_->done.wait();
  // The wait advanced our clock: the request's completion gated us.
  if (sim::CausalObserver* causal = engine.causal_observer();
      causal != nullptr && state_->cause != 0 && engine.now() > before) {
    causal->ack(state_->cause, engine.current(), engine.now());
  }
}

bool Request::test() const {
  if (!valid()) throw std::logic_error("test on invalid Request");
  return state_->done.is_set();
}

const Packet& Request::packet() const {
  if (!valid() || !state_->has_packet) {
    throw std::logic_error("Request::packet: no delivered packet");
  }
  return state_->packet;
}

Request Request::grequest(sim::Engine& engine) {
  return Request(std::make_shared<State>(engine));
}

void Request::complete() {
  if (!valid()) throw std::logic_error("complete on invalid Request");
  sim::Engine& engine = state_->done.engine();
  if (sim::CausalObserver* causal = engine.causal_observer();
      causal != nullptr && engine.in_process()) {
    state_->cause = causal->emit(sim::EdgeKind::grequest, engine.current(),
                                 engine.now());
  }
  state_->done.set();
}

void Request::complete_at(Time at) {
  if (!valid()) throw std::logic_error("complete on invalid Request");
  sim::Engine& engine = state_->done.engine();
  if (sim::CausalObserver* causal = engine.causal_observer();
      causal != nullptr && engine.in_process()) {
    state_->cause =
        causal->emit(sim::EdgeKind::grequest, engine.current(), at);
  }
  state_->done.set_at(at);
}

void Request::wait_all(std::vector<Request>& requests) {
  // Waiting in order is correct: each wait() only moves the clock forward,
  // so the caller ends at the max completion time.
  for (Request& r : requests) {
    if (r.valid()) r.wait();
  }
}

}  // namespace e10::mpi
