#include "mpi/request.h"

#include <stdexcept>

namespace e10::mpi {

void Request::wait() {
  if (!valid()) throw std::logic_error("wait on invalid Request");
  state_->done.wait();
}

bool Request::test() const {
  if (!valid()) throw std::logic_error("test on invalid Request");
  return state_->done.is_set();
}

const Packet& Request::packet() const {
  if (!valid() || !state_->has_packet) {
    throw std::logic_error("Request::packet: no delivered packet");
  }
  return state_->packet;
}

Request Request::grequest(sim::Engine& engine) {
  return Request(std::make_shared<State>(engine));
}

void Request::complete() {
  if (!valid()) throw std::logic_error("complete on invalid Request");
  state_->done.set();
}

void Request::complete_at(Time at) {
  if (!valid()) throw std::logic_error("complete on invalid Request");
  state_->done.set_at(at);
}

void Request::wait_all(std::vector<Request>& requests) {
  // Waiting in order is correct: each wait() only moves the clock forward,
  // so the caller ends at the max completion time.
  for (Request& r : requests) {
    if (r.valid()) r.wait();
  }
}

}  // namespace e10::mpi
