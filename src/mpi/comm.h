// Simulated MPI communicator.
//
// Point-to-point messages travel through the Fabric cost model with MPI
// matching semantics (FIFO per (source, tag), wildcards supported) and an
// eager/rendezvous protocol switch at `eager_threshold`. Collectives are
// modeled as synchronizing rendezvous: all participants leave at
// max(arrival) + an analytic tree cost — precisely the global-
// synchronisation behaviour the paper identifies as collective I/O's
// bottleneck (a slow rank delays everyone).
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "mpi/request.h"
#include "mpi/topology.h"
#include "net/fabric.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace e10::mpi {

inline constexpr int kAnySource = -2;
inline constexpr int kAnyTag = -1;

struct MpiParams {
  /// Per-tree-stage latency of collective algorithms.
  Time coll_alpha = units::microseconds(3);
  /// Serialization bandwidth used by the collective cost model.
  Offset coll_bytes_per_second = Offset{3400} * units::MiB;
  /// Messages larger than this use the rendezvous protocol (sender completes
  /// at delivery), smaller ones are eager (sender completes at tx-done).
  Offset eager_threshold = 256 * units::KiB;
};

class CommState;

/// Lightweight per-rank facade over a shared CommState; cheap to copy.
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] std::size_t node() const;
  [[nodiscard]] std::size_t node_of(int rank) const;
  /// Lowest rank of this communicator hosted on the same node as `rank` —
  /// the node's leader in the two-level aggregation protocol. Communicator-
  /// relative: a split communicator elects its own leaders.
  [[nodiscard]] int node_leader(int rank) const;
  /// Ranks of this communicator hosted on `node`, ascending. Empty when the
  /// communicator has no rank there.
  [[nodiscard]] std::vector<int> node_ranks(std::size_t node) const;
  /// Largest number of this communicator's ranks sharing one node (1 means
  /// an intra-node gather stage has nothing to gather).
  [[nodiscard]] std::size_t max_ranks_per_node() const;
  sim::Engine& engine() const;
  const std::string& name() const;

  // ---- Point-to-point ----------------------------------------------------

  /// Nonblocking send of a type-erased payload charged as `bytes` on the
  /// wire. The payload is copied by value into the matching receive.
  Request isend(int dst, int tag, std::any payload, Offset bytes) const;

  /// Nonblocking receive from `src` (or kAnySource) with `tag` (or kAnyTag).
  Request irecv(int src, int tag) const;

  void send(int dst, int tag, std::any payload, Offset bytes) const;
  Packet recv(int src, int tag) const;

  // ---- Collectives (all synchronizing; see header comment) ---------------

  void barrier() const;

  template <typename T, typename BinaryOp>
  T allreduce(const T& value, BinaryOp op, Offset bytes = sizeof(T)) const {
    auto contribs = run_collective(Kind::allreduce, std::any(value), bytes);
    T acc = std::any_cast<const T&>((*contribs)[0]);
    for (std::size_t i = 1; i < contribs->size(); ++i) {
      acc = op(acc, std::any_cast<const T&>((*contribs)[i]));
    }
    return acc;
  }

  template <typename T>
  std::vector<T> allgather(const T& value, Offset bytes = sizeof(T)) const {
    auto contribs = run_collective(Kind::allgather, std::any(value), bytes);
    std::vector<T> out;
    out.reserve(contribs->size());
    for (const std::any& a : *contribs) out.push_back(std::any_cast<const T&>(a));
    return out;
  }

  /// `send[i]` goes to rank i; returns the vector received from each rank.
  /// `bytes_each` is the wire size of one element.
  template <typename T>
  std::vector<T> alltoall(const std::vector<T>& send,
                          Offset bytes_each = sizeof(T)) const {
    if (static_cast<int>(send.size()) != size()) {
      throw std::logic_error("alltoall: sendbuf size != comm size");
    }
    auto contribs = run_collective(Kind::alltoall, std::any(send),
                                   bytes_each * size());
    std::vector<T> out;
    out.reserve(contribs->size());
    for (const std::any& a : *contribs) {
      const auto& row = std::any_cast<const std::vector<T>&>(a);
      out.push_back(row[static_cast<std::size_t>(rank_)]);
    }
    return out;
  }

  /// Typed fast path for the per-round counts dissemination (the hottest
  /// collective in the whole simulator — every exchange round of every
  /// rank runs one). Virtual-time cost and synchronization semantics are
  /// identical to alltoall<Offset>(send, sizeof(Offset)); the host-side
  /// difference is that contributions land in a pooled sparse entry list
  /// instead of per-rank std::any-boxed vector copies, and the result is
  /// written into a caller-reused buffer (resized to size(), absent
  /// entries zero).
  void alltoall_counts(const std::vector<Offset>& send,
                       std::vector<Offset>& recv) const;

  /// Sparse variant: `send` holds this rank's nonzero (destination rank,
  /// byte count) pairs — the caller usually knows them directly from its
  /// round plan; destinations must be unique within one call — and
  /// `recv`, when non-null, receives the dense
  /// per-source counts. Passing nullptr skips result extraction entirely
  /// (a rank that is not an aggregator never reads its counts), which is
  /// a pure host-side shortcut: the rank still participates in, and is
  /// charged for, the collective exactly as in the dense form.
  void alltoall_counts(const std::vector<std::pair<int, Offset>>& send,
                       std::vector<Offset>* recv) const;

  template <typename T>
  T bcast(const T& value, int root, Offset bytes = sizeof(T)) const {
    auto contribs = run_collective(Kind::bcast, std::any(value), bytes);
    return std::any_cast<const T&>((*contribs)[static_cast<std::size_t>(root)]);
  }

  /// Root receives everyone's value (rank order); non-roots get empty.
  template <typename T>
  std::vector<T> gather(const T& value, int root,
                        Offset bytes = sizeof(T)) const {
    auto contribs = run_collective(Kind::gather, std::any(value), bytes);
    if (rank_ != root) return {};
    std::vector<T> out;
    out.reserve(contribs->size());
    for (const std::any& a : *contribs) out.push_back(std::any_cast<const T&>(a));
    return out;
  }

  template <typename T, typename BinaryOp>
  T reduce(const T& value, BinaryOp op, int root,
           Offset bytes = sizeof(T)) const {
    auto contribs = run_collective(Kind::reduce, std::any(value), bytes);
    if (rank_ != root) return T{};
    T acc = std::any_cast<const T&>((*contribs)[0]);
    for (std::size_t i = 1; i < contribs->size(); ++i) {
      acc = op(acc, std::any_cast<const T&>((*contribs)[i]));
    }
    return acc;
  }

  /// MPI_Comm_split: ranks with equal color form a new communicator, ordered
  /// by (key, old rank).
  Comm split(int color, int key) const;

  /// MPI_Comm_dup: same group, fresh matching context.
  Comm dup() const;

 private:
  friend class World;
  friend class CommState;
  enum class Kind { barrier, allreduce, allgather, alltoall, bcast, gather, reduce };

  Comm(std::shared_ptr<CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  /// Deposits this rank's contribution and blocks until all ranks arrive;
  /// returns the full contribution vector indexed by rank.
  std::shared_ptr<const std::vector<std::any>> run_collective(
      Kind kind, std::any contribution, Offset bytes) const;

  std::shared_ptr<CommState> state_;
  int rank_ = -1;
};

/// Shared implementation of one communicator.
class CommState {
 public:
  CommState(sim::Engine& engine, net::Fabric& fabric,
            std::vector<std::size_t> rank_nodes, MpiParams params,
            std::string name);

  int size() const { return static_cast<int>(rank_nodes_.size()); }
  sim::Engine& engine() { return engine_; }
  const std::string& name() const { return name_; }
  std::size_t node_of(int rank) const;
  [[nodiscard]] int node_leader(int rank) const;
  [[nodiscard]] std::vector<int> node_ranks(std::size_t node) const;
  [[nodiscard]] std::size_t max_ranks_per_node() const;

  Request isend(int src, int dst, int tag, std::any payload, Offset bytes);
  Request irecv(int dst, int src, int tag);

  std::shared_ptr<const std::vector<std::any>> collective(
      int rank, Comm::Kind kind, std::any contribution, Offset bytes);

  void alltoall_counts(int rank, const std::vector<Offset>& send,
                       std::vector<Offset>& recv);
  void alltoall_counts_sparse(int rank,
                              const std::vector<std::pair<int, Offset>>& send,
                              std::vector<Offset>* recv);

  std::shared_ptr<CommState> split_child(int caller_rank, int color, int key,
                                         int* new_rank);

  std::shared_ptr<CommState> dup_child(int caller_rank);

  /// Diagnostics.
  std::uint64_t p2p_messages() const { return p2p_messages_; }
  std::uint64_t collectives() const { return coll_ops_started_; }

 private:
  struct PendingMsg {
    Packet packet;
    Time arrival = 0;
    std::shared_ptr<Request::State> send_state;  // open rendezvous send
    sim::CausalToken cause = 0;  // the send's causal emission
  };
  struct PendingRecv {
    std::shared_ptr<Request::State> state;
    int src = kAnySource;
    int tag = kAnyTag;
  };
  struct RankQueues {
    std::deque<PendingMsg> unexpected;
    std::deque<PendingRecv> posted;
  };
  /// One nonzero cell of a typed alltoall's counts matrix.
  struct CountEntry {
    int src = 0;
    int dst = 0;
    Offset bytes = 0;
  };

  struct CollOp {
    explicit CollOp(sim::Engine& engine) : release(engine) {}
    std::vector<std::any> contributions;
    /// Typed alltoall_counts deposits (sparse, deposit order); empty
    /// unless `typed`. Recycled through counts_pool_ on retirement.
    std::vector<CountEntry> counts;
    std::size_t arrived = 0;
    std::size_t departed = 0;
    Time max_arrival = 0;
    Offset max_bytes = 0;
    Comm::Kind kind = Comm::Kind::barrier;
    bool typed = false;
    sim::SimEvent release;
    std::shared_ptr<std::vector<std::any>> result;
    sim::CausalToken cause = 0;  // last arriver's release emission
  };

  static bool matches(const PendingRecv& recv, const Packet& packet);
  Time collective_cost(Comm::Kind kind, Offset max_bytes) const;
  /// Finds or creates the caller's next collective slot (advancing its
  /// sequence number) and checks operation agreement across ranks.
  CollOp& collective_slot(int rank, Comm::Kind kind);
  /// Arrival bookkeeping after the caller deposited its contribution; the
  /// last arriver schedules the release and seals the result.
  void complete_arrival(CollOp& op, Offset bytes);
  /// Blocks until the op releases; records the straggler causal edge.
  void await_release(CollOp& op);
  /// Departure bookkeeping: the last leaver retires the op (ops retire
  /// strictly in sequence order, so only the deque front ever pops).
  void depart(CollOp& op);
  /// Checks out a cleared entry list (pooled capacity) for a typed op.
  std::vector<CountEntry> acquire_counts();
  /// Shared join/extract core of the dense and sparse typed alltoalls.
  CollOp& join_counts(int rank);
  void extract_counts(const CollOp& op, int rank, std::vector<Offset>& recv);

  sim::Engine& engine_;
  net::Fabric& fabric_;
  std::vector<std::size_t> rank_nodes_;
  MpiParams params_;
  std::string name_;
  std::vector<RankQueues> queues_;
  // Per-rank collective sequence numbers; in-flight ops live in a deque
  // indexed by (sequence - coll_base_). Ranks join ops in sequence order
  // and ops retire in sequence order, so the window is dense: no per-op
  // tree nodes or shared_ptr control blocks, and deque references stay
  // stable while ranks wait inside an op.
  std::vector<std::uint64_t> coll_seq_;
  std::deque<CollOp> coll_ops_;
  std::uint64_t coll_base_ = 0;
  // Retired typed-alltoall entry lists awaiting reuse.
  std::vector<std::vector<CountEntry>> counts_pool_;
  // Children created by split/dup at a given collective sequence.
  std::map<std::uint64_t, std::map<int, std::shared_ptr<CommState>>> children_;
  std::uint64_t p2p_messages_ = 0;
  std::uint64_t coll_ops_started_ = 0;
  int next_child_id_ = 0;
};

}  // namespace e10::mpi
