#include "mpi/datatype.h"

#include <algorithm>
#include <stdexcept>

namespace e10::mpi {

FlatType::FlatType(std::vector<Extent> blocks, Offset extent)
    : blocks_(std::move(blocks)), extent_(extent) {
  std::erase_if(blocks_, [](const Extent& e) { return e.empty(); });
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].offset < 0 || blocks_[i].end() > extent_) {
      throw std::logic_error("FlatType: block outside extent");
    }
    if (i > 0 && blocks_[i].offset < blocks_[i - 1].end()) {
      throw std::logic_error("FlatType: overlapping blocks");
    }
    size_ += blocks_[i].length;
  }
  if (blocks_.empty() || size_ == 0) {
    throw std::logic_error("FlatType: empty type");
  }
}

FlatType FlatType::contiguous(Offset bytes) {
  if (bytes <= 0) throw std::logic_error("FlatType::contiguous: bytes <= 0");
  return FlatType({Extent{0, bytes}}, bytes);
}

FlatType FlatType::vector(Offset count, Offset block_bytes,
                          Offset stride_bytes) {
  if (count <= 0 || block_bytes <= 0 || stride_bytes < block_bytes) {
    throw std::logic_error("FlatType::vector: invalid shape");
  }
  std::vector<Extent> blocks;
  blocks.reserve(static_cast<std::size_t>(count));
  for (Offset i = 0; i < count; ++i) {
    blocks.push_back(Extent{i * stride_bytes, block_bytes});
  }
  // MPI_Type_vector extent: from the first byte to the last byte touched.
  const Offset extent = (count - 1) * stride_bytes + block_bytes;
  return FlatType(std::move(blocks), extent);
}

FlatType FlatType::indexed(std::vector<Extent> blocks, Offset extent) {
  return FlatType(std::move(blocks), extent);
}

FlatType FlatType::subarray(const std::vector<Offset>& sizes,
                            const std::vector<Offset>& subsizes,
                            const std::vector<Offset>& starts,
                            Offset elem_bytes) {
  const std::size_t dims = sizes.size();
  if (dims == 0 || subsizes.size() != dims || starts.size() != dims ||
      elem_bytes <= 0) {
    throw std::logic_error("FlatType::subarray: inconsistent dims");
  }
  for (std::size_t d = 0; d < dims; ++d) {
    if (subsizes[d] <= 0 || starts[d] < 0 ||
        starts[d] + subsizes[d] > sizes[d]) {
      throw std::logic_error("FlatType::subarray: box out of bounds");
    }
  }
  // Row-major (C order): the last dimension is contiguous. One block per
  // run of the last dimension.
  std::vector<Offset> stride(dims);  // bytes per step in each dimension
  Offset acc = elem_bytes;
  for (std::size_t d = dims; d-- > 0;) {
    stride[d] = acc;
    acc *= sizes[d];
  }
  const Offset total_extent = acc;  // whole array in bytes
  const Offset run_bytes = subsizes[dims - 1] * elem_bytes;

  std::vector<Extent> blocks;
  std::vector<Offset> idx(dims, 0);  // index within the sub-box, last dim 0
  while (true) {
    Offset off = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      off += (starts[d] + idx[d]) * stride[d];
    }
    blocks.push_back(Extent{off, run_bytes});
    // Advance the multi-index over all dims except the last.
    std::size_t d = dims - 1;
    bool carried = true;
    while (carried && d-- > 0) {
      if (++idx[d] < subsizes[d]) {
        carried = false;
      } else {
        idx[d] = 0;
      }
    }
    if (carried) break;  // wrapped the most significant dimension
    if (dims == 1) break;
  }
  return FlatType(std::move(blocks), total_extent);
}

std::vector<Extent> FlatType::file_extents(Offset disp, Offset stream_offset,
                                           Offset nbytes) const {
  if (stream_offset < 0 || nbytes < 0) {
    throw std::logic_error("FlatType::file_extents: negative range");
  }
  std::vector<Extent> out;
  if (nbytes == 0) return out;

  Offset instance = stream_offset / size_;
  Offset within = stream_offset % size_;
  Offset remaining = nbytes;
  // Find the block containing `within` in the data stream of an instance.
  std::size_t b = 0;
  Offset consumed = 0;
  while (b < blocks_.size() && consumed + blocks_[b].length <= within) {
    consumed += blocks_[b].length;
    ++b;
  }
  Offset block_skip = within - consumed;

  while (remaining > 0) {
    const Extent& blk = blocks_[b];
    const Offset take = std::min(remaining, blk.length - block_skip);
    const Offset file_off =
        disp + instance * extent_ + blk.offset + block_skip;
    if (!out.empty() && out.back().end() == file_off) {
      out.back().length += take;  // merge adjacent
    } else {
      out.push_back(Extent{file_off, take});
    }
    remaining -= take;
    block_skip = 0;
    if (++b == blocks_.size()) {
      b = 0;
      ++instance;
    }
  }
  return out;
}

std::vector<IoPiece> FlatType::map_data(Offset disp, Offset stream_offset,
                                        const DataView& data) const {
  const std::vector<Extent> extents =
      file_extents(disp, stream_offset, data.size());
  std::vector<IoPiece> out;
  out.reserve(extents.size());
  Offset cursor = 0;
  for (const Extent& e : extents) {
    out.push_back(IoPiece{e, data.slice(cursor, e.length)});
    cursor += e.length;
  }
  return out;
}

}  // namespace e10::mpi
