// Span tracer over virtual time, emitting Chrome trace-event JSON.
//
// The paper argues with MPE phase timelines (Fig. 2): to see that a cache
// flush overlapped a compute phase you need *when*, not just totals. The
// Tracer records named, nested spans per simulated process — each MPI rank
// is one "thread" track, each cache sync thread its own track — plus
// counter samples (e.g. sync queue depth over time). The output loads
// directly in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is off by default; a Span on a disabled tracer costs one branch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/engine.h"

namespace e10::obs {

class Tracer;

/// One key/value attribute attached to a span ("args" in the trace JSON).
struct SpanArg {
  std::string key;
  std::string text;        // when !numeric
  std::int64_t value = 0;  // when numeric
  bool numeric = false;
};

/// RAII span: starts at construction, ends at destruction (or end()), both
/// timestamped in virtual time. Inactive (moved-from / disabled-tracer)
/// spans are free.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, int track, std::string_view name);
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attaches an attribute (no-op on an inactive span).
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, std::string_view value);

  /// Ends the span now instead of at destruction.
  void end();

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  int track_ = 0;
  Time start_ = 0;
  sim::ProcessId pid_ = sim::kNoProcess;
  std::string name_;
  std::vector<SpanArg> args_;
};

class Tracer {
 public:
  /// One recorded trace event. Spans ('X') carry the simulated process
  /// that emitted them so the critical-path analyzer (critical_path.h) can
  /// join lanes against causal edges, which are keyed by ProcessId.
  struct Event {
    char phase = 'X';
    int track = 0;
    Time ts = 0;
    Time dur = 0;
    std::int64_t value = 0;  // counter sample
    std::uint64_t flow_id = 0;  // flow ('s'/'f') pairing id
    sim::ProcessId pid = sim::kNoProcess;
    std::string name;
    std::vector<SpanArg> args;
  };
  struct TrackInfo {
    std::string name;
    int sort_index = 0;
  };

  explicit Tracer(sim::Engine& engine) : engine_(engine) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Registers (or looks up) a named track — one "thread" row in the
  /// viewer. `sort_index` orders tracks top-to-bottom; -1 appends after
  /// everything registered so far.
  int track(const std::string& name, int sort_index = -1);

  /// Cached per-rank track ("rank N", sorted by rank).
  int rank_track(int rank);

  /// Counter sample: plots `value` over virtual time as its own series.
  void counter(const std::string& name, std::int64_t value);

  /// Zero-duration marker on a track.
  void instant(int track, std::string_view name);

  /// Paired flow arrow ('s' at the source, 'f' at the destination) for one
  /// causal edge; both halves share `id` so every start has its finish.
  /// Emitted together, at ack time, so the pairing is structural.
  void flow(int src_track, Time src_ts, int dst_track, Time dst_ts,
            std::uint64_t id, std::string_view name);

  /// Track a simulated process last opened a span on (-1 = none seen);
  /// lets edge recorders draw flows between existing lanes.
  int pid_track(sim::ProcessId pid) const;

  std::size_t events() const { return events_.size(); }
  std::size_t tracks() const { return tracks_.size(); }
  /// Spans constructed but not yet ended. A clean run ends at zero; a
  /// dangling-open span (lost on an error path) never reaches the JSON, so
  /// the fault smoke asserts this instead of grepping the output.
  std::size_t open_spans() const { return open_spans_; }
  const std::vector<Event>& event_list() const { return events_; }
  const std::vector<TrackInfo>& track_list() const { return tracks_; }
  void clear();

  /// Chrome trace-event JSON: {"traceEvents": [...]} with thread-name
  /// metadata, complete ("X") spans, counter ("C") samples and instant
  /// ("i") markers. Timestamps are virtual microseconds.
  std::string to_json() const;

  Status write(const std::string& path) const;

 private:
  friend class Span;

  sim::Engine& engine_;
  bool enabled_ = false;
  std::size_t open_spans_ = 0;
  std::vector<TrackInfo> tracks_;
  std::unordered_map<std::string, int> track_ids_;
  std::vector<int> rank_tracks_;  // rank -> track id (-1 unregistered)
  std::unordered_map<sim::ProcessId, int> pid_tracks_;
  std::vector<Event> events_;
};

}  // namespace e10::obs
