// Run-report emitter: serialises one experiment run — configuration,
// profiler phase table, metrics snapshot and derived quantities (perceived
// bandwidth, flush-overlap ratio) — into a single machine-readable JSON
// object. Every figure bench can dump one with --report=<path>, making runs
// comparable across PRs without screen-scraping the printed tables.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "prof/profiler.h"

namespace e10::obs {

/// Per-phase min/p50/p95/avg/max table (seconds) of a profiler.
Json phase_table_json(const prof::Profiler& profiler);

struct RunReportInputs {
  /// Experiment configuration as flat key/value pairs (hints, testbed).
  std::vector<std::pair<std::string, std::string>> config;
  const prof::Profiler* profiler = nullptr;
  const MetricsRegistry* metrics = nullptr;
  /// Derived quantities (perceived_bandwidth_gib, flush_overlap_ratio, ...).
  std::map<std::string, double> derived;
  /// Concurrency-checker section (analysis::ConcurrencyChecker::to_json());
  /// omitted from the report while null (checker not enabled).
  Json analysis;
};

/// {"config": {...}, "phases": {...}, "metrics": {...}, "derived": {...}}
/// plus "analysis" when the concurrency checker ran.
Json run_report_json(const RunReportInputs& inputs);

/// Fraction of the background cache-sync work hidden behind compute:
///   hidden_sync / total_sync, in [0, 1]
/// where total_sync is the virtual time the sync threads spent servicing
/// requests (cache.sync.busy_ns) and the visible part is the flush_wait
/// phase summed over ranks — the time each rank actually waited on its own
/// sync grequests. (not_hidden_sync is the wrong yardstick here: it times
/// the whole collective close, so the barrier smears the slowest rank's
/// wait across every rank.) 0 when no sync work happened.
double flush_overlap_ratio(const MetricsRegistry& metrics,
                           const prof::Profiler& profiler);

Status write_json_file(const std::string& path, const Json& value);

}  // namespace e10::obs
