// Metrics registry: named counters, gauges and fixed-bucket histograms over
// integral values (bytes, counts, virtual nanoseconds).
//
// The registry is owned by the Platform and shared by every layer of the
// collective-write pipeline (cache sync threads, PFS servers, the ADIO
// collective driver, MPIWRAP). Hot paths resolve their Counter*/Gauge*
// pointers once at construction — references into the registry stay valid
// for its lifetime — so a disabled or absent registry costs a single null
// check per event. snapshot as_json() feeds the run report.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace e10::obs {

class Counter {
 public:
  void add(std::int64_t delta) { value_ += delta; }
  void increment() { ++value_; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Point-in-time value with a high-water mark (e.g. sync queue depth).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_ = value;
    high_water_ = std::max(high_water_, value);
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  std::int64_t value() const { return value_; }
  std::int64_t high_water() const { return high_water_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit overflow bucket catches everything above the last.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t value);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// One count per bound, plus the trailing overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  /// Index of the bucket `value` falls into.
  std::size_t bucket_index(std::int64_t value) const;

  /// Nearest-rank percentile estimate from the bucket counts, q in [0, 1]:
  /// the inclusive upper bound of the bucket holding the q-quantile
  /// observation, clamped to the observed [min, max] (exact for the
  /// overflow bucket, which reports max()). 0 when empty.
  std::int64_t percentile(double q) const;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Power-of-`factor` bucket bounds starting at `first`: {first, first*factor,
/// ...}, `count` entries. The usual byte-size bucketing.
std::vector<std::int64_t> exponential_bounds(std::int64_t first, int count,
                                             std::int64_t factor = 2);

class MetricsRegistry {
 public:
  /// Create-or-get. Returned references stay valid for the registry's
  /// lifetime (instruments live in node-based maps).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` apply only on first creation.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Counter value, 0 when the counter was never touched.
  std::int64_t counter_value(const std::string& name) const;
  /// Gauge high-water mark, 0 when the gauge was never touched.
  std::int64_t gauge_high_water(const std::string& name) const;

  std::size_t instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void clear();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  Json as_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Well-known metric names shared between the instrumented layers and the
/// run-report emitter.
namespace names {
inline constexpr const char* kSyncRequests = "cache.sync.requests";
inline constexpr const char* kSyncBytes = "cache.sync.bytes_synced";
inline constexpr const char* kSyncChunks = "cache.sync.staging_chunks";
inline constexpr const char* kSyncBusyNs = "cache.sync.busy_ns";
inline constexpr const char* kSyncQueueDepth = "cache.sync.queue_depth";
inline constexpr const char* kCacheWrites = "cache.writes";
inline constexpr const char* kCacheBytes = "cache.bytes_cached";
inline constexpr const char* kCacheFallbackWrites = "cache.fallback_writes";
inline constexpr const char* kCacheReadHitBytes = "cache.read_hit_bytes";
inline constexpr const char* kCacheReadMisses = "cache.read_misses";
inline constexpr const char* kCacheWriteBytesHist = "cache.write_bytes";
inline constexpr const char* kAlltoallSendBytes = "coll.alltoall_send_bytes";
/// Write-pipeline occupancy (adio::WritePipeline): issued aggregator
/// writes, join stalls, and the virtual-time split of the in-flight write
/// service time into hidden (overlapped the next round's shuffle) and
/// stalled (the joiner waited). overlap = hidden_ns / write_ns.
inline constexpr const char* kPipelineWrites = "coll.pipeline.writes";
inline constexpr const char* kPipelineStalls = "coll.pipeline.stalls";
inline constexpr const char* kPipelineStallNs = "coll.pipeline.stall_ns";
inline constexpr const char* kPipelineWriteNs = "coll.pipeline.write_ns";
inline constexpr const char* kPipelineHiddenNs = "coll.pipeline.hidden_ns";
/// Two-level collective-write exchange (docs/two_level.md): rounds that ran
/// the two-stage protocol and its message/byte traffic split by physical
/// route — intra covers the stage-1 member → leader gathers plus stage-2
/// leader → same-node-aggregator forwards (shared memory), inter covers the
/// stage-2 leader → aggregator flows that cross nodes (NIC). Bytes are
/// payload bytes; a leader-aggregator's self-destined bucket merges locally
/// and is counted under neither.
inline constexpr const char* kTwoLevelRounds = "coll.two_level.rounds";
inline constexpr const char* kTwoLevelIntraMsgs = "coll.two_level.intra_msgs";
inline constexpr const char* kTwoLevelIntraBytes =
    "coll.two_level.intra_bytes";
inline constexpr const char* kTwoLevelInterMsgs = "coll.two_level.inter_msgs";
inline constexpr const char* kTwoLevelInterBytes =
    "coll.two_level.inter_bytes";
inline constexpr const char* kLockWaits = "pfs.lock.waits";
inline constexpr const char* kLockWaitNs = "pfs.lock.wait_ns";
inline constexpr const char* kLockHandoffs = "pfs.lock.handoffs";
inline constexpr const char* kFaultInjected = "fault.injected";
inline constexpr const char* kFaultOutageRejections = "fault.outage_rejections";
inline constexpr const char* kFaultCrashes = "fault.crashes";
inline constexpr const char* kSyncRetries = "cache.sync.retries";
inline constexpr const char* kSyncRequeues = "cache.sync.requeues";
inline constexpr const char* kSyncAbandoned = "cache.sync.abandoned";
inline constexpr const char* kCacheDegraded = "cache.degraded";
inline constexpr const char* kCacheRecoveredExtents = "cache.recover.extents";
inline constexpr const char* kCacheRecoveredBytes = "cache.recover.bytes";
/// Flush scheduler (cache::FlushScheduler, docs/flush_scheduler.md):
/// request coalescing — batches drained from the inbox, the sync requests
/// they carried, and the stripe-aligned dispatch writes they collapsed to
/// (coalesce ratio = members / dispatches, 1.0 when nothing merged) — and
/// the multi-stream drain's virtual-time split of the in-flight durable
/// write service time into hidden (overlapped staging reads / other
/// streams) and stalled (the completion loop waited on the oldest stream).
inline constexpr const char* kSyncBatches = "cache.sync.coalesce.batches";
inline constexpr const char* kSyncBatchMembers = "cache.sync.coalesce.members";
inline constexpr const char* kSyncDispatches = "cache.sync.coalesce.dispatches";
inline constexpr const char* kSyncStreamWriteNs = "cache.sync.streams.write_ns";
inline constexpr const char* kSyncStreamHiddenNs =
    "cache.sync.streams.hidden_ns";
inline constexpr const char* kSyncStreamStalls = "cache.sync.streams.stalls";
inline constexpr const char* kSyncStreamStallNs =
    "cache.sync.streams.stall_ns";
inline constexpr const char* kSyncStreamInflight =
    "cache.sync.streams.inflight";
/// Concurrency-checker registrations for the registry itself: every layer
/// that creates/aggregates instruments from inside a simulated process
/// claims this monitor (keyed by the registry's address) and reports the
/// access under this shared-var name. Individual Counter/Gauge bumps
/// through pre-resolved pointers are treated as atomic (relaxed) updates
/// and are not tracked. See docs/static_analysis.md.
inline constexpr const char* kMetricsMonitor = "obs.metrics.monitor";
inline constexpr const char* kMetricsRegistryVar = "obs.metrics.registry";
}  // namespace names

}  // namespace e10::obs
