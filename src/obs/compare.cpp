#include "obs/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace e10::obs {

namespace {

/// One normalized measurement extracted from either input shape.
struct Point {
  double io_time_s = 0.0;
  std::string checksum;  // empty = not recorded
  std::vector<std::pair<std::string, double>> phase_max_s;
  /// Deterministic scheduler counters (derived "engine.*" keys). Unlike
  /// io_time_s these carry no model jitter at all: the same build on the
  /// same spec reproduces them exactly, so the gate compares them with no
  /// threshold.
  std::vector<std::pair<std::string, double>> engine_counters;
};

/// Normalized document: insertion-ordered key -> point.
using PointMap = std::vector<std::pair<std::string, Point>>;

const Point* find_point(const PointMap& map, const std::string& key) {
  for (const auto& [k, p] : map) {
    if (k == key) return &p;
  }
  return nullptr;
}

std::string config_str(const Json& config, const char* key) {
  const Json* value = config.find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

Result<PointMap> from_run_report_array(const Json& doc) {
  PointMap out;
  for (const Json& entry : doc.elements()) {
    const Json* config = entry.find("config");
    const Json* derived = entry.find("derived");
    if (config == nullptr || derived == nullptr) {
      return Status::error(Errc::invalid_argument,
                           "compare: run-report entry without config/derived");
    }
    const Json* io_time = derived->find("io_time_s");
    if (io_time == nullptr || !io_time->is_numeric()) {
      return Status::error(Errc::invalid_argument,
                           "compare: run-report entry without io_time_s");
    }
    std::string key = config_str(*config, "combo") + "/" +
                      config_str(*config, "cache_case");
    for (const char* extra : {"pipeline", "sync_streams", "coalesce"}) {
      const std::string value = config_str(*config, extra);
      if (!value.empty()) key += "/" + std::string(extra) + "=" + value;
    }
    Point point;
    point.io_time_s = io_time->as_number();
    point.checksum = config_str(*config, "content_checksum");
    for (const auto& [name, value] : derived->members()) {
      if (name.rfind("engine.", 0) == 0 && value.is_numeric()) {
        point.engine_counters.emplace_back(name, value.as_number());
      }
    }
    if (const Json* phases = entry.find("phases");
        phases != nullptr && phases->is_object()) {
      for (const auto& [phase, row] : phases->members()) {
        if (const Json* max_s = row.find("max_s");
            max_s != nullptr && max_s->is_numeric()) {
          point.phase_max_s.emplace_back(phase, max_s->as_number());
        }
      }
    }
    out.emplace_back(std::move(key), std::move(point));
  }
  return out;
}

Result<PointMap> from_bench_entries(const Json& doc) {
  PointMap out;
  const Json& entries = doc.at("entries");
  if (!entries.is_array()) {
    return Status::error(Errc::invalid_argument,
                         "compare: 'entries' is not an array");
  }
  for (const Json& entry : entries.elements()) {
    if (!entry.is_object()) {
      return Status::error(Errc::invalid_argument,
                           "compare: BENCH entry is not an object");
    }
    const std::string base = config_str(entry, "combo") + "/" +
                             config_str(entry, "cache_case");
    bool any = false;
    for (const auto& [key, value] : entry.members()) {
      if (key.rfind("io_time_s", 0) != 0 || !value.is_numeric()) continue;
      Point point;
      point.io_time_s = value.as_number();
      std::string suffix = key.substr(9);  // "" or "_pipelined" etc.
      if (!suffix.empty() && suffix.front() == '_') suffix.erase(0, 1);
      out.emplace_back(suffix.empty() ? base : base + "/" + suffix,
                       std::move(point));
      any = true;
    }
    if (!any) {
      return Status::error(Errc::invalid_argument,
                           "compare: BENCH entry without io_time_s columns");
    }
  }
  return out;
}

Result<PointMap> normalize(const Json& doc) {
  if (doc.is_array()) return from_run_report_array(doc);
  if (doc.is_object() && doc.find("entries") != nullptr) {
    return from_bench_entries(doc);
  }
  return Status::error(
      Errc::invalid_argument,
      "compare: document is neither a run-report array nor a BENCH file");
}

}  // namespace

Result<CompareReport> compare_runs(const Json& baseline, const Json& candidate,
                                   const CompareOptions& options) {
  auto base_points = normalize(baseline);
  if (!base_points.is_ok()) return base_points.status();
  auto cand_points = normalize(candidate);
  if (!cand_points.is_ok()) return cand_points.status();
  // An empty side makes every verdict vacuous; a gate that can "pass" on a
  // truncated or mis-generated document is worse than one that errors.
  if (base_points.value().empty()) {
    return Status::error(Errc::invalid_argument,
                         "compare: baseline contains no measurements");
  }
  if (cand_points.value().empty()) {
    return Status::error(Errc::invalid_argument,
                         "compare: candidate contains no measurements");
  }

  CompareReport report;
  for (const auto& [key, base] : base_points.value()) {
    const Point* cand = find_point(cand_points.value(), key);
    if (cand == nullptr) {
      report.missing_in_candidate.push_back(key);
      continue;
    }
    PointDiff diff;
    diff.key = key;
    diff.baseline_s = base.io_time_s;
    diff.candidate_s = cand->io_time_s;
    diff.ratio = base.io_time_s > 0 ? cand->io_time_s / base.io_time_s : 1.0;
    diff.regression =
        cand->io_time_s > base.io_time_s * (1.0 + options.threshold);
    diff.improved =
        cand->io_time_s < base.io_time_s * (1.0 - options.threshold);
    diff.checksum_mismatch = !base.checksum.empty() &&
                             !cand->checksum.empty() &&
                             base.checksum != cand->checksum;
    // Phase attribution: where did the time move? Largest slowdown first.
    for (const auto& [phase, base_s] : base.phase_max_s) {
      for (const auto& [cand_phase, cand_s] : cand->phase_max_s) {
        if (cand_phase == phase) {
          diff.phase_deltas.emplace_back(phase, cand_s - base_s);
          break;
        }
      }
    }
    std::sort(diff.phase_deltas.begin(), diff.phase_deltas.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    // Deterministic-counter gate: any engine.* counter present on both
    // sides must match exactly — a drift means the scheduler did different
    // work for the same spec, which io_time thresholds would absorb.
    for (const auto& [name, base_value] : base.engine_counters) {
      for (const auto& [cand_name, cand_value] : cand->engine_counters) {
        if (cand_name != name) continue;
        if (base_value != cand_value) {
          char buf[128];
          std::snprintf(buf, sizeof(buf), "%s: %.0f -> %.0f", name.c_str(),
                        base_value, cand_value);
          diff.counter_mismatches.emplace_back(buf);
        }
        break;
      }
    }
    if (!diff.counter_mismatches.empty()) diff.regression = true;
    if (diff.regression) ++report.regressions;
    if (diff.improved) ++report.improvements;
    if (diff.checksum_mismatch) report.checksum_mismatch = true;
    report.points.push_back(std::move(diff));
  }
  for (const auto& [key, point] : cand_points.value()) {
    if (find_point(base_points.value(), key) == nullptr) {
      report.missing_in_baseline.push_back(key);
    }
  }
  if (report.points.empty()) {
    // Both sides parsed but share no point keys — almost certainly two
    // documents from different sweeps (mismatched schema/configs), not a
    // clean run.
    return Status::error(
        Errc::invalid_argument,
        "compare: no overlapping points between baseline and candidate");
  }
  return report;
}

std::string compare_table(const CompareReport& report,
                          const CompareOptions& options) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-44s %12s %12s %8s  %s\n", "point",
                "baseline_s", "candidate_s", "ratio", "verdict");
  out += buf;
  for (const PointDiff& point : report.points) {
    const char* verdict = point.regression    ? "REGRESSION"
                          : point.improved    ? "improved"
                                              : "ok";
    std::snprintf(buf, sizeof(buf), "%-44s %12.6f %12.6f %8.4f  %s%s\n",
                  point.key.c_str(), point.baseline_s, point.candidate_s,
                  point.ratio, verdict,
                  point.checksum_mismatch ? " [checksum mismatch]" : "");
    out += buf;
    if (point.regression) {
      // Attribute: phases whose max-over-ranks time grew, biggest first.
      int shown = 0;
      for (const auto& [phase, delta] : point.phase_deltas) {
        if (delta <= 0 || shown >= 3) break;
        std::snprintf(buf, sizeof(buf), "    %-24s +%.6f s\n", phase.c_str(),
                      delta);
        out += buf;
        ++shown;
      }
    }
    for (const std::string& mismatch : point.counter_mismatches) {
      out += "    counter drift: " + mismatch + "\n";
    }
  }
  for (const std::string& key : report.missing_in_candidate) {
    out += "missing in candidate: " + key + "\n";
  }
  for (const std::string& key : report.missing_in_baseline) {
    out += "new in candidate: " + key + "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "%zu point(s), %zu regression(s), %zu improvement(s), "
                "threshold %.1f%% -> %s\n",
                report.points.size(), report.regressions, report.improvements,
                options.threshold * 100.0,
                report.ok(options) ? "PASS" : "FAIL");
  out += buf;
  return out;
}

}  // namespace e10::obs
