#include "obs/causal.h"

#include "obs/trace.h"

namespace e10::obs {

namespace {
/// Monitor name for the recorder's engine-atomic critical sections.
constexpr const char* kRecorderMonitor = "obs.causal.recorder_monitor";
}  // namespace

CausalRecorder::CausalRecorder(sim::Engine& engine, Tracer* tracer)
    : engine_(engine),
      tracer_(tracer),
      state_var_(engine, "obs.causal.recorder") {
  engine_.set_causal_observer(this);
}

CausalRecorder::~CausalRecorder() {
  if (engine_.causal_observer() == this) engine_.set_causal_observer(nullptr);
}

sim::CausalToken CausalRecorder::emit(sim::EdgeKind kind, sim::ProcessId pid,
                                      Time at, Time contended_ns) {
  const sim::MonitorGuard monitor(engine_, this, kRecorderMonitor);
  E10_SHARED_WRITE(state_var_);
  emissions_.push_back(Emission{kind, pid, at, contended_ns});
  return static_cast<sim::CausalToken>(emissions_.size());
}

void CausalRecorder::ack(sim::CausalToken token, sim::ProcessId pid, Time at) {
  if (token == 0 || token > emissions_.size()) return;
  const sim::MonitorGuard monitor(engine_, this, kRecorderMonitor);
  E10_SHARED_WRITE(state_var_);
  const Emission& src = emissions_[token - 1];
  // A process acking its own emission at the emission time carries no
  // dependency (e.g. a rank waiting on a grequest it completed itself).
  if (src.pid == pid && src.at == at) return;
  acks_.push_back(Ack{token, pid, at});
  if (tracer_ != nullptr && tracer_->enabled() && src.pid != pid) {
    const int src_track = tracer_->pid_track(src.pid);
    const int dst_track = tracer_->pid_track(pid);
    if (src_track >= 0 && dst_track >= 0) {
      tracer_->flow(src_track, src.at, dst_track, at, token,
                    sim::edge_kind_name(src.kind));
    }
  }
}

void CausalRecorder::bridge(sim::EdgeKind kind, sim::ProcessId pid, Time issue,
                            Time done) {
  if (done <= issue) return;
  const sim::MonitorGuard monitor(engine_, this, kRecorderMonitor);
  E10_SHARED_WRITE(state_var_);
  bridges_.push_back(Bridge{kind, pid, issue, done});
}

void CausalRecorder::interval(sim::EdgeKind kind, sim::ProcessId pid,
                              Time begin, Time end) {
  if (end <= begin) return;
  const sim::MonitorGuard monitor(engine_, this, kRecorderMonitor);
  E10_SHARED_WRITE(state_var_);
  overlays_.push_back(Overlay{kind, pid, begin, end});
}

void CausalRecorder::clear() {
  emissions_.clear();
  acks_.clear();
  bridges_.clear();
  overlays_.clear();
}

}  // namespace e10::obs
