#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace e10::obs {

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::boolean;
  j.bool_ = value;
  return j;
}

Json Json::integer(std::int64_t value) {
  Json j;
  j.kind_ = Kind::integer;
  j.int_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::number;
  j.num_ = value;
  return j;
}

Json Json::str(std::string value) {
  Json j;
  j.kind_ = Kind::string;
  j.str_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::object;
  return j;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::object) throw std::logic_error("Json::set on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::array) throw std::logic_error("Json::push on non-array");
  arr_.push_back(std::move(value));
  return *this;
}

bool Json::as_bool() const {
  if (kind_ != Kind::boolean) throw std::logic_error("Json: not a boolean");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::integer) return int_;
  if (kind_ == Kind::number) return static_cast<std::int64_t>(num_);
  throw std::logic_error("Json: not numeric");
}

double Json::as_number() const {
  if (kind_ == Kind::integer) return static_cast<double>(int_);
  if (kind_ == Kind::number) return num_;
  throw std::logic_error("Json: not numeric");
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::string) throw std::logic_error("Json: not a string");
  return str_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::array) return arr_.size();
  if (kind_ == Kind::object) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::array) throw std::logic_error("Json: not an array");
  return arr_.at(index);
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw std::logic_error("Json: missing key '" + std::string(key) + "'");
  }
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::object) throw std::logic_error("Json: not an object");
  return obj_;
}

const std::vector<Json>& Json::elements() const {
  if (kind_ != Kind::array) throw std::logic_error("Json: not an array");
  return arr_;
}

void json_escape(std::string_view text, std::string& out) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    out += "null";
    return;
  }
  out.append(buf, end);
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::null: out += "null"; return;
    case Kind::boolean: out += bool_ ? "true" : "false"; return;
    case Kind::integer: out += std::to_string(int_); return;
    case Kind::number: append_number(out, num_); return;
    case Kind::string:
      out += '"';
      json_escape(str_, out);
      out += '"';
      return;
    case Kind::array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_indent(out, indent, depth + 1);
        out += '"';
        json_escape(obj_[i].first, out);
        out += "\":";
        if (indent > 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- Parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> run() {
    auto value = parse_value();
    if (!value.is_ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return value;
  }

 private:
  Status fail(const std::string& what) const {
    return Status::error(Errc::invalid_argument,
                         "json parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.is_ok()) return s.status();
      return Json::str(std::move(s).value());
    }
    if (consume_word("true")) return Json::boolean(true);
    if (consume_word("false")) return Json::boolean(false);
    if (consume_word("null")) return Json::null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail("unexpected character");
  }

  Result<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.is_ok()) return key.status();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      auto value = parse_value();
      if (!value.is_ok()) return value;
      obj.set(std::move(key).value(), std::move(value).value());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      return fail("expected ',' or '}'");
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      auto value = parse_value();
      if (!value.is_ok()) return value;
      arr.push(std::move(value).value());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      return fail("expected ',' or ']'");
    }
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          auto code = parse_hex4();
          if (!code.is_ok()) return code.status();
          append_utf8(out, code.value());
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  Result<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A') + 10;
      else return fail("bad \\u escape");
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json::integer(value);
      }
      // Out-of-range integers fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      return fail("bad number");
    }
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace e10::obs
