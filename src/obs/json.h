// Minimal JSON document used by the observability subsystem: the metrics
// registry, the run-report emitter, and tests that parse an emitted trace
// back. Build with the static constructors + set()/push(), serialise with
// dump(), and re-read with parse(). Object members keep insertion order so
// reports stay diff-friendly across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace e10::obs {

class Json {
 public:
  enum class Kind { null, boolean, integer, number, string, array, object };

  Json() = default;  // null
  static Json null() { return Json(); }
  static Json boolean(bool value);
  static Json integer(std::int64_t value);
  static Json number(double value);
  static Json str(std::string value);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_object() const { return kind_ == Kind::object; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_string() const { return kind_ == Kind::string; }
  /// integer or number.
  bool is_numeric() const {
    return kind_ == Kind::integer || kind_ == Kind::number;
  }

  // ---- Building ----------------------------------------------------------

  /// Object member: appends, or replaces an existing key in place.
  Json& set(std::string key, Json value);

  /// Array element.
  Json& push(Json value);

  // ---- Access (throws std::logic_error on kind mismatch) -----------------

  bool as_bool() const;
  std::int64_t as_int() const;      // integer (or integral number)
  double as_number() const;         // integer widens to double
  const std::string& as_string() const;

  /// Element/member count (array/object; 0 for scalars).
  std::size_t size() const;

  /// Array element.
  const Json& at(std::size_t index) const;

  /// Object member; nullptr when absent.
  const Json* find(std::string_view key) const;

  /// Object member; throws when absent.
  const Json& at(std::string_view key) const;

  const std::vector<std::pair<std::string, Json>>& members() const;
  const std::vector<Json>& elements() const;

  // ---- Serialisation -----------------------------------------------------

  /// Compact when indent == 0, pretty-printed otherwise.
  std::string dump(int indent = 0) const;

  static Result<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Appends `text` to `out` with JSON string escaping (no surrounding
/// quotes). Shared with the streaming trace-event writer.
void json_escape(std::string_view text, std::string& out);

}  // namespace e10::obs
