#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace e10::obs {

Span::Span(Tracer* tracer, int track, std::string_view name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  track_ = track;
  name_ = name;
  start_ = tracer->engine_.now();
  pid_ = tracer->engine_.in_process() ? tracer->engine_.current()
                                      : sim::kNoProcess;
  ++tracer->open_spans_;
  if (pid_ != sim::kNoProcess) tracer->pid_tracks_[pid_] = track;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    track_ = other.track_;
    start_ = other.start_;
    pid_ = other.pid_;
    name_ = std::move(other.name_);
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::arg(std::string_view key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  args_.push_back(SpanArg{std::string(key), {}, value, /*numeric=*/true});
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  args_.push_back(
      SpanArg{std::string(key), std::string(value), 0, /*numeric=*/false});
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer::Event event;
  event.phase = 'X';
  event.track = track_;
  event.ts = start_;
  event.dur = tracer_->engine_.now() - start_;
  event.pid = pid_;
  event.name = std::move(name_);
  event.args = std::move(args_);
  tracer_->events_.push_back(std::move(event));
  --tracer_->open_spans_;
  tracer_ = nullptr;
}

int Tracer::track(const std::string& name, int sort_index) {
  const auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const int id = static_cast<int>(tracks_.size());
  int sort = sort_index;
  if (sort < 0) {
    sort = 0;
    for (const TrackInfo& t : tracks_) sort = std::max(sort, t.sort_index + 1);
  }
  tracks_.push_back(TrackInfo{name, sort});
  track_ids_.emplace(name, id);
  return id;
}

int Tracer::rank_track(int rank) {
  const auto index = static_cast<std::size_t>(rank);
  if (index >= rank_tracks_.size()) rank_tracks_.resize(index + 1, -1);
  if (rank_tracks_[index] < 0) {
    rank_tracks_[index] = track("rank " + std::to_string(rank), rank);
  }
  return rank_tracks_[index];
}

void Tracer::counter(const std::string& name, std::int64_t value) {
  if (!enabled_) return;
  Event event;
  event.phase = 'C';
  event.track = 0;
  event.ts = engine_.now();
  event.value = value;
  event.name = name;
  events_.push_back(std::move(event));
}

void Tracer::instant(int track_id, std::string_view name) {
  if (!enabled_) return;
  Event event;
  event.phase = 'i';
  event.track = track_id;
  event.ts = engine_.now();
  event.name = std::string(name);
  events_.push_back(std::move(event));
}

void Tracer::flow(int src_track, Time src_ts, int dst_track, Time dst_ts,
                  std::uint64_t id, std::string_view name) {
  if (!enabled_) return;
  // Chrome requires the start's timestamp to be <= the finish's.
  if (dst_ts < src_ts) dst_ts = src_ts;
  Event start;
  start.phase = 's';
  start.track = src_track;
  start.ts = src_ts;
  start.flow_id = id;
  start.name = std::string(name);
  events_.push_back(std::move(start));
  Event finish;
  finish.phase = 'f';
  finish.track = dst_track;
  finish.ts = dst_ts;
  finish.flow_id = id;
  finish.name = std::string(name);
  events_.push_back(std::move(finish));
}

int Tracer::pid_track(sim::ProcessId pid) const {
  const auto it = pid_tracks_.find(pid);
  return it == pid_tracks_.end() ? -1 : it->second;
}

void Tracer::clear() {
  tracks_.clear();
  track_ids_.clear();
  rank_tracks_.clear();
  pid_tracks_.clear();
  events_.clear();
  open_spans_ = 0;
}

namespace {

/// Virtual ns -> trace "ts"/"dur" microseconds with ns resolution kept.
void append_us(std::string& out, Time ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_args(std::string& out, const std::vector<SpanArg>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    json_escape(args[i].key, out);
    out += "\":";
    if (args[i].numeric) {
      out += std::to_string(args[i].value);
    } else {
      out += '"';
      json_escape(args[i].text, out);
      out += '"';
    }
  }
  out += '}';
}

}  // namespace

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(128 + events_.size() * 96 + tracks_.size() * 128);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  comma();
  out += R"j({"ph":"M","pid":0,"tid":0,"name":"process_name",)j"
         R"j("args":{"name":"e10 collective-write pipeline (virtual time)"}})j";

  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const std::string tid = std::to_string(i);
    comma();
    out += R"({"ph":"M","pid":0,"tid":)" + tid +
           R"(,"name":"thread_name","args":{"name":")";
    json_escape(tracks_[i].name, out);
    out += "\"}}";
    comma();
    out += R"({"ph":"M","pid":0,"tid":)" + tid +
           R"(,"name":"thread_sort_index","args":{"sort_index":)" +
           std::to_string(tracks_[i].sort_index) + "}}";
  }

  for (const Event& event : events_) {
    comma();
    out += "{\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(event.track);
    out += ",\"name\":\"";
    json_escape(event.name, out);
    out += "\",\"ts\":";
    append_us(out, event.ts);
    switch (event.phase) {
      case 'X':
        out += ",\"dur\":";
        append_us(out, event.dur);
        if (!event.args.empty()) {
          out += ',';
          append_args(out, event.args);
        }
        break;
      case 'C':
        out += ",\"args\":{\"value\":";
        out += std::to_string(event.value);
        out += '}';
        break;
      case 'i':
        out += ",\"s\":\"t\"";
        break;
      case 's':
      case 'f':
        out += ",\"cat\":\"causal\",\"id\":";
        out += std::to_string(event.flow_id);
        if (event.phase == 'f') out += ",\"bp\":\"e\"";
        break;
      default:
        break;
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status Tracer::write(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::error(Errc::io_error, "trace: cannot open " + path);
  }
  const std::string body = to_json();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  file.flush();
  if (!file) return Status::error(Errc::io_error, "trace: write failed");
  return Status::ok();
}

}  // namespace e10::obs
