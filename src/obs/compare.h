// Run-report comparison: the never-slower perf gate.
//
// Diffs two performance documents point by point and flags regressions
// beyond a relative threshold, with per-phase attribution of where the lost
// time went. Two input shapes are understood:
//
//  * a run-report JSON array (bench --report=): one object per experiment
//    with "config" (combo, cache_case, pipeline, ...), "derived"
//    (io_time_s) and "phases" (per-phase max_s) — phase attribution works;
//  * a checked-in BENCH_*.json results file: {"entries": [...]} rows keyed
//    by (combo, cache_case) whose io_time_s_* columns are each compared.
//
// bench/bench_compare.cpp wraps this as the CLI the CI regression gate
// runs against the checked-in baselines.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace e10::obs {

struct CompareOptions {
  /// Relative io-time tolerance: candidate > baseline * (1 + threshold)
  /// counts as a regression. 2% absorbs libm/platform jitter in the
  /// virtual-time models while catching real slowdowns.
  double threshold = 0.02;
  /// Treat content-checksum mismatches as failures (default: warn only —
  /// an intentional workload change legitimately moves the checksum).
  bool strict_checksums = false;
};

/// One compared sweep point (one experiment / one BENCH column).
struct PointDiff {
  std::string key;        // e.g. "8_4m/cache_enabled/pipeline=on"
  double baseline_s = 0;  // baseline io time
  double candidate_s = 0;
  double ratio = 1.0;     // candidate / baseline (>1 = slower)
  bool regression = false;
  bool improved = false;
  bool checksum_mismatch = false;
  /// Deterministic "engine.*" scheduler counters (run-report derived keys)
  /// present on both sides that do not match EXACTLY — no threshold, since
  /// the same build on the same spec reproduces them bit-for-bit. Any entry
  /// marks the point as a regression: the scheduler did different work.
  std::vector<std::string> counter_mismatches;
  /// Per-phase max_s deltas (candidate - baseline, seconds), largest
  /// slowdown first; empty when the inputs carry no phase table.
  std::vector<std::pair<std::string, double>> phase_deltas;
};

struct CompareReport {
  std::vector<PointDiff> points;
  std::vector<std::string> missing_in_candidate;  // baseline-only keys
  std::vector<std::string> missing_in_baseline;   // candidate-only keys
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  bool checksum_mismatch = false;

  bool ok(const CompareOptions& options) const {
    return regressions == 0 &&
           (!options.strict_checksums || !checksum_mismatch);
  }
};

/// Compares two parsed documents (either supported shape, independently
/// detected per side). Errors when a document matches neither shape.
Result<CompareReport> compare_runs(const Json& baseline, const Json& candidate,
                                   const CompareOptions& options);

/// Human-readable table: one row per point, regressions flagged, phase
/// attribution for each regressed point, and a final verdict line.
std::string compare_table(const CompareReport& report,
                          const CompareOptions& options);

}  // namespace e10::obs
