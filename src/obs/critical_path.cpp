#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <unordered_map>

#include "prof/profiler.h"

namespace e10::obs {

namespace {

using sim::EdgeKind;
using sim::ProcessId;

/// Span-name -> category table. Innermost span wins on nesting, so outer
/// workload wrappers (write_file, write_round) only absorb their own glue.
PathCategory categorize(const std::string& name) {
  if (name == "shuffle_all2all" || name == "exchange" ||
      name == "shuffle_intra" || name == "shuffle_inter") {
    return PathCategory::shuffle;
  }
  if (name == "write_contig" || name == "read_contig") {
    return PathCategory::write;
  }
  if (name == "flush_batch" || name == "flush_wait" ||
      name == "not_hidden_sync" || name == "close") {
    return PathCategory::flush;
  }
  if (name == "compute" || name == "calc") return PathCategory::compute;
  if (name == "open" || name == "offset_exchange" || name == "post_write" ||
      name == "write_round" || name == "write_file") {
    return PathCategory::coordination;
  }
  return PathCategory::other;
}

/// Flattened, innermost-wins segmentation of one process's spans. Gaps are
/// implicit (attributed as idle by attribute_range).
struct FlatSeg {
  Time begin;
  Time end;
  PathCategory category;
  const std::string* name;
};

struct Lane {
  std::vector<FlatSeg> segs;  // sorted by begin, non-overlapping
  int track = -1;
  Time last_end = 0;
};

struct LaneSpanRef {
  Time begin;
  Time end;
  const std::string* name;
};

std::vector<FlatSeg> flatten(std::vector<LaneSpanRef> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const LaneSpanRef& a, const LaneSpanRef& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;  // outer first at equal begin
            });
  std::vector<FlatSeg> out;
  std::vector<const LaneSpanRef*> stack;
  Time cursor = 0;
  auto emit = [&](Time b, Time e, const LaneSpanRef* s) {
    if (e <= b) return;
    out.push_back(FlatSeg{b, e, categorize(*s->name), s->name});
  };
  std::size_t i = 0;
  while (i < spans.size() || !stack.empty()) {
    const Time next_begin =
        i < spans.size() ? spans[i].begin : std::numeric_limits<Time>::max();
    if (!stack.empty() && stack.back()->end <= next_begin) {
      emit(cursor, stack.back()->end, stack.back());
      cursor = std::max(cursor, stack.back()->end);
      stack.pop_back();
    } else {
      if (!stack.empty()) emit(cursor, next_begin, stack.back());
      cursor = std::max(cursor, next_begin);
      stack.push_back(&spans[i]);
      ++i;
    }
  }
  return out;
}

struct PidEvent {  // one ack or bridge, per-pid, for the backward walk
  Time at;          // ack time / bridge done time
  bool is_bridge;
  std::size_t index;  // into recorder.acks() / recorder.bridges()
};

class Walker {
 public:
  Walker(const Tracer& tracer, const CausalRecorder& recorder,
         CriticalPathReport& report)
      : recorder_(recorder), report_(report) {
    build_lanes(tracer);
    build_events();
    build_overlays();
  }

  void run() {
    ProcessId pid = sim::kNoProcess;
    Time t = 0;
    // Ties (several ranks finishing at the same virtual time — the normal
    // case at a final join) break toward the smallest pid so the walk's
    // starting lane never depends on container iteration order.
    for (const auto& [lane_pid, lane] : lanes_) {
      if (lane.last_end > t || (lane.last_end == t && pid == sim::kNoProcess)) {
        t = lane.last_end;
        pid = lane_pid;
      }
    }
    // Job completion can also be a pure emission (no span open at the end).
    for (const auto& e : recorder_.emissions()) {
      if (e.at > t) {
        t = e.at;
        pid = e.pid;
      }
    }
    report_.total_ns = t;
    if (pid == sim::kNoProcess || t == 0) return;

    const std::size_t cap =
        recorder_.acks().size() + recorder_.bridges().size() + 16;
    std::size_t steps = 0;
    while (t > 0) {
      if (++steps > cap) {
        report_.truncated = true;
        attribute_range(pid, 0, t);
        return;
      }
      const PidEvent* binding = take_binding(pid, t);
      if (binding == nullptr) {
        attribute_range(pid, 0, t);
        return;
      }
      ++report_.hops;
      if (binding->is_bridge) {
        const CausalRecorder::Bridge& br =
            recorder_.bridges()[binding->index];
        attribute_range(pid, br.done, t);
        // The background service interval itself: write/flush machinery,
        // with lock-wait overlays carved out.
        attribute_service(pid, br);
        t = br.issue;
      } else {
        const CausalRecorder::Ack& ack = recorder_.acks()[binding->index];
        const CausalRecorder::Emission& src = recorder_.source_of(ack);
        attribute_range(pid, std::min(ack.at, t), t);
        const Time jump_at = std::min(src.at, ack.at);
        if (ack.at > jump_at) attribute_edge(pid, src, jump_at, ack.at);
        pid = src.pid;
        t = jump_at;
      }
    }
  }

 private:
  void build_lanes(const Tracer& tracer) {
    std::map<ProcessId, std::vector<LaneSpanRef>> spans;
    for (const Tracer::Event& e : tracer.event_list()) {
      if (e.phase != 'X' || e.pid == sim::kNoProcess) continue;
      spans[e.pid].push_back(LaneSpanRef{e.ts, e.ts + e.dur, &e.name});
      Lane& lane = lanes_[e.pid];
      lane.track = e.track;
      lane.last_end = std::max(lane.last_end, e.ts + e.dur);
    }
    for (auto& [pid, list] : spans) lanes_[pid].segs = flatten(std::move(list));
    tracks_ = &tracer.track_list();
  }

  void build_events() {
    for (std::size_t i = 0; i < recorder_.acks().size(); ++i) {
      events_[recorder_.acks()[i].pid].push_back(
          PidEvent{recorder_.acks()[i].at, false, i});
    }
    for (std::size_t i = 0; i < recorder_.bridges().size(); ++i) {
      events_[recorder_.bridges()[i].pid].push_back(
          PidEvent{recorder_.bridges()[i].done, true, i});
    }
    for (auto& [pid, list] : events_) {
      std::sort(list.begin(), list.end(),
                [](const PidEvent& a, const PidEvent& b) {
                  return a.at < b.at;
                });
      cursors_[pid] = list.size();
    }
  }

  void build_overlays() {
    for (const CausalRecorder::Overlay& o : recorder_.overlays()) {
      overlays_[o.pid].push_back(o);
    }
    for (auto& [pid, list] : overlays_) {
      std::sort(list.begin(), list.end(),
                [](const CausalRecorder::Overlay& a,
                   const CausalRecorder::Overlay& b) {
                  return a.begin < b.begin;
                });
    }
  }

  /// Latest unconsumed ack/bridge for pid at or before t; consumes it.
  /// Per-lane walk positions only move backward, so a cursor suffices.
  const PidEvent* take_binding(ProcessId pid, Time t) {
    const auto it = events_.find(pid);
    if (it == events_.end()) return nullptr;
    std::vector<PidEvent>& list = it->second;
    std::size_t& cursor = cursors_[pid];
    while (cursor > 0 && list[cursor - 1].at > t) --cursor;
    if (cursor == 0) return nullptr;
    return &list[--cursor];
  }

  void add(PathCategory c, Time ns) {
    report_.category_ns[static_cast<std::size_t>(c)] += ns;
  }

  /// Lock-wait overlay time for pid within [b, e).
  Time overlay_within(ProcessId pid, Time b, Time e) {
    const auto it = overlays_.find(pid);
    if (it == overlays_.end()) return 0;
    Time covered = 0;
    for (const CausalRecorder::Overlay& o : it->second) {
      if (o.begin >= e) break;
      covered += std::max<Time>(0, std::min(o.end, e) - std::max(o.begin, b));
    }
    return covered;
  }

  /// Splits [a, t) along pid's flattened spans; uncovered time is idle;
  /// lock-wait overlays inside write/flush segments are re-labelled.
  void attribute_range(ProcessId pid, Time a, Time t) {
    if (t <= a) return;
    const auto it = lanes_.find(pid);
    const std::string* label = nullptr;
    std::array<Time, kPathCategoryCount> local{};
    Time cursor = a;
    if (it != lanes_.end()) {
      const std::vector<FlatSeg>& segs = it->second.segs;
      auto seg = std::lower_bound(
          segs.begin(), segs.end(), a,
          [](const FlatSeg& s, Time value) { return s.end <= value; });
      for (; seg != segs.end() && seg->begin < t; ++seg) {
        const Time b = std::max(cursor, seg->begin);
        const Time e = std::min(t, seg->end);
        if (seg->begin > cursor) {
          local[static_cast<std::size_t>(PathCategory::idle)] +=
              seg->begin - cursor;
        }
        if (e > b) {
          PathCategory cat = seg->category;
          Time span_ns = e - b;
          if (cat == PathCategory::write || cat == PathCategory::flush) {
            const Time locked = overlay_within(pid, b, e);
            local[static_cast<std::size_t>(PathCategory::lock_wait)] += locked;
            span_ns -= locked;
          }
          local[static_cast<std::size_t>(cat)] += span_ns;
          label = seg->name;
        }
        cursor = std::max(cursor, e);
      }
    }
    if (cursor < t) {
      local[static_cast<std::size_t>(PathCategory::idle)] += t - cursor;
    }
    PathCategory top = PathCategory::idle;
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
      report_.category_ns[c] += local[c];
      if (local[c] > local[static_cast<std::size_t>(top)]) {
        top = static_cast<PathCategory>(c);
      }
    }
    record_segment(pid, a, t, top, label != nullptr ? *label : std::string());
  }

  /// In-flight edge latency between an emission and the wake-up it gated.
  void attribute_edge(ProcessId pid, const CausalRecorder::Emission& src,
                      Time from, Time to) {
    const Time gap = to - from;
    PathCategory cat = PathCategory::coordination;
    switch (src.kind) {
      case EdgeKind::message: {
        const Time queued = std::min(src.contended_ns, gap);
        add(PathCategory::nic_contention, queued);
        add(PathCategory::shuffle, gap - queued);
        record_segment(pid, from, to, PathCategory::shuffle,
                       sim::edge_kind_name(src.kind));
        return;
      }
      case EdgeKind::sync_queue:
      case EdgeKind::grequest:
      case EdgeKind::batch_done:
        cat = PathCategory::flush;
        break;
      case EdgeKind::write_join:
        cat = PathCategory::write;
        break;
      case EdgeKind::lock_wait:
        cat = PathCategory::lock_wait;
        break;
      case EdgeKind::collective:
      case EdgeKind::process:
        cat = PathCategory::coordination;
        break;
    }
    add(cat, gap);
    record_segment(pid, from, to, cat, sim::edge_kind_name(src.kind));
  }

  /// Asynchronous service interval a stalled join waited out.
  void attribute_service(ProcessId pid, const CausalRecorder::Bridge& br) {
    const PathCategory cat = br.kind == EdgeKind::write_join
                                 ? PathCategory::write
                                 : PathCategory::flush;
    const Time locked = overlay_within(pid, br.issue, br.done);
    add(PathCategory::lock_wait, locked);
    add(cat, br.done - br.issue - locked);
    record_segment(pid, br.issue, br.done, cat, sim::edge_kind_name(br.kind));
  }

  void record_segment(ProcessId pid, Time begin, Time end, PathCategory cat,
                      std::string label) {
    if (end <= begin) return;
    if (report_.segments.size() >= CriticalPathReport::kMaxSegments) return;
    PathSegment seg;
    seg.pid = pid;
    const auto it = lanes_.find(pid);
    if (it != lanes_.end() && it->second.track >= 0 && tracks_ != nullptr &&
        static_cast<std::size_t>(it->second.track) < tracks_->size()) {
      seg.process = (*tracks_)[static_cast<std::size_t>(it->second.track)].name;
    }
    seg.begin = begin;
    seg.end = end;
    seg.category = cat;
    seg.label = std::move(label);
    report_.segments.push_back(std::move(seg));
  }

  const CausalRecorder& recorder_;
  CriticalPathReport& report_;
  // Ordered maps: the walker iterates these while choosing its starting
  // lane and building per-pid state, and report content must never depend
  // on hash-iteration order (e10_lint unordered-iteration).
  std::map<ProcessId, Lane> lanes_;
  std::map<ProcessId, std::vector<PidEvent>> events_;
  std::map<ProcessId, std::size_t> cursors_;
  std::map<ProcessId, std::vector<CausalRecorder::Overlay>> overlays_;
  const std::vector<Tracer::TrackInfo>* tracks_ = nullptr;
};

/// Rank index from a "rank N" track name; -1 otherwise.
int rank_of_track(const std::string& name) {
  if (name.rfind("rank ", 0) != 0) return -1;
  int rank = 0;
  for (std::size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    rank = rank * 10 + (name[i] - '0');
  }
  return name.size() > 5 ? rank : -1;
}

void fill_rank_skew(const Tracer& tracer, CriticalPathReport& report) {
  std::map<int, Time> ends;  // track -> last span end
  for (const Tracer::Event& e : tracer.event_list()) {
    if (e.phase != 'X') continue;
    Time& end = ends[e.track];
    end = std::max(end, e.ts + e.dur);
  }
  std::vector<Time> rank_ends;
  const auto& tracks = tracer.track_list();
  for (const auto& [track, end] : ends) {
    if (static_cast<std::size_t>(track) >= tracks.size()) continue;
    if (rank_of_track(tracks[static_cast<std::size_t>(track)].name) >= 0) {
      rank_ends.push_back(end);
    }
  }
  if (rank_ends.empty()) return;
  std::sort(rank_ends.begin(), rank_ends.end());
  report.rank_end_min_ns = rank_ends.front();
  report.rank_end_max_ns = rank_ends.back();
  report.rank_end_p50_ns = rank_ends[(rank_ends.size() - 1) / 2];
  if (rank_ends.size() > 1 && rank_ends.back() > 0) {
    report.rank_skew =
        static_cast<double>(rank_ends.back() - rank_ends.front()) /
        static_cast<double>(rank_ends.back());
  }
}

/// Phase groups the consistency check compares (exact PhaseScope names, so
/// the trace and profiler see the same intervals).
struct PhaseGroup {
  const char* name;
  std::vector<const char*> spans;
  std::vector<prof::Phase> phases;
};

void fill_consistency(const Tracer& tracer, const prof::Profiler* profiler,
                      CriticalPathReport& report) {
  if (profiler == nullptr) return;
  const std::vector<PhaseGroup> groups = {
      {"shuffle",
       {"shuffle_intra", "shuffle_all2all", "shuffle_inter", "exchange"},
       {prof::Phase::shuffle_intra, prof::Phase::shuffle_all2all,
        prof::Phase::shuffle_inter, prof::Phase::exchange}},
      {"write",
       {"write_contig", "read_contig"},
       {prof::Phase::write_contig, prof::Phase::read_contig}},
      // not_hidden_sync is deliberately absent: it is a workflow-level
      // timer around the deferred close with no PhaseScope span of its own.
      {"flush", {"flush_wait"}, {prof::Phase::flush_wait}},
  };
  const auto& tracks = tracer.track_list();
  // (rank, group) -> traced nanoseconds
  std::unordered_map<std::int64_t, Time> traced;
  for (const Tracer::Event& e : tracer.event_list()) {
    if (e.phase != 'X') continue;
    if (static_cast<std::size_t>(e.track) >= tracks.size()) continue;
    const int rank =
        rank_of_track(tracks[static_cast<std::size_t>(e.track)].name);
    if (rank < 0 || rank >= profiler->ranks()) continue;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const char* span : groups[g].spans) {
        if (e.name == span) {
          traced[rank * 8 + static_cast<std::int64_t>(g)] += e.dur;
        }
      }
    }
  }
  double dev = 0.0;
  for (int rank = 0; rank < profiler->ranks(); ++rank) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      Time expected = 0;
      for (const prof::Phase phase : groups[g].phases) {
        expected += profiler->rank_total(rank, phase);
      }
      if (expected <= 0) continue;
      const auto it = traced.find(rank * 8 + static_cast<std::int64_t>(g));
      const Time got = it != traced.end() ? it->second : 0;
      const double rel =
          static_cast<double>(got > expected ? got - expected
                                             : expected - got) /
          static_cast<double>(expected);
      dev = std::max(dev, rel);
    }
  }
  report.phase_consistency_dev = dev;
}

double seconds(Time ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace

const char* path_category_name(PathCategory category) {
  switch (category) {
    case PathCategory::shuffle: return "shuffle";
    case PathCategory::write: return "write";
    case PathCategory::flush: return "flush";
    case PathCategory::lock_wait: return "lock_wait";
    case PathCategory::nic_contention: return "nic_contention";
    case PathCategory::compute: return "compute";
    case PathCategory::coordination: return "coordination";
    case PathCategory::idle: return "idle";
    case PathCategory::other: return "other";
    case PathCategory::count: break;
  }
  return "?";
}

CriticalPathReport analyze_critical_path(const Tracer& tracer,
                                         const CausalRecorder& recorder,
                                         const prof::Profiler* profiler) {
  CriticalPathReport report;
  Walker walker(tracer, recorder, report);
  walker.run();
  Time named = 0;
  for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
    if (c != static_cast<std::size_t>(PathCategory::other)) {
      named += report.category_ns[c];
    }
    if (report.category_ns[c] >
        report.category_ns[static_cast<std::size_t>(report.bottleneck)]) {
      report.bottleneck = static_cast<PathCategory>(c);
    }
  }
  report.attributed_fraction =
      report.total_ns > 0
          ? static_cast<double>(named) / static_cast<double>(report.total_ns)
          : 1.0;
  fill_rank_skew(tracer, report);
  fill_consistency(tracer, profiler, report);
  return report;
}

Json critical_path_json(const CriticalPathReport& report,
                        const prof::Profiler* profiler) {
  Json out = Json::object();
  out.set("total_s", Json::number(seconds(report.total_ns)));
  out.set("bottleneck", Json::str(path_category_name(report.bottleneck)));
  out.set("attributed_fraction", Json::number(report.attributed_fraction));
  out.set("hops", Json::integer(report.hops));
  out.set("truncated", Json::boolean(report.truncated));
  Json categories = Json::object();
  for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
    Json entry = Json::object();
    entry.set("s", Json::number(seconds(report.category_ns[c])));
    entry.set("fraction",
              Json::number(report.fraction(static_cast<PathCategory>(c))));
    categories.set(path_category_name(static_cast<PathCategory>(c)),
                   std::move(entry));
  }
  out.set("categories", std::move(categories));
  Json skew = Json::object();
  skew.set("min_s", Json::number(seconds(report.rank_end_min_ns)));
  skew.set("p50_s", Json::number(seconds(report.rank_end_p50_ns)));
  skew.set("max_s", Json::number(seconds(report.rank_end_max_ns)));
  skew.set("skew", Json::number(report.rank_skew));
  out.set("rank_skew", std::move(skew));
  out.set("phase_consistency_dev",
          Json::number(report.phase_consistency_dev));
  if (profiler != nullptr) {
    Json tails = Json::object();
    for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
      const auto phase = static_cast<prof::Phase>(p);
      Json row = Json::object();
      row.set("p50_s",
              Json::number(seconds(profiler->percentile_over_ranks(phase, 0.50))));
      row.set("p95_s",
              Json::number(seconds(profiler->percentile_over_ranks(phase, 0.95))));
      row.set("p99_s",
              Json::number(seconds(profiler->percentile_over_ranks(phase, 0.99))));
      row.set("max_s", Json::number(seconds(profiler->max_over_ranks(phase))));
      tails.set(prof::phase_name(phase), std::move(row));
    }
    out.set("phase_tails", std::move(tails));
  }
  Json segments = Json::array();
  for (const PathSegment& seg : report.segments) {
    Json row = Json::object();
    row.set("process", Json::str(seg.process));
    row.set("begin_s", Json::number(seconds(seg.begin)));
    row.set("end_s", Json::number(seconds(seg.end)));
    row.set("category", Json::str(path_category_name(seg.category)));
    if (!seg.label.empty()) row.set("label", Json::str(seg.label));
    segments.push(std::move(row));
  }
  out.set("segments", std::move(segments));
  return out;
}

std::string critical_path_table(const CriticalPathReport& report) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "critical path: %.6f s end-to-end, bottleneck=%s, "
                "%d hops, %.1f%% attributed\n",
                seconds(report.total_ns),
                path_category_name(report.bottleneck), report.hops,
                report.attributed_fraction * 100.0);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-16s %12s %8s\n", "category",
                "seconds", "share");
  out += buf;
  for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
    const auto cat = static_cast<PathCategory>(c);
    if (report.category_ns[c] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-16s %12.6f %7.1f%%\n",
                  path_category_name(cat), seconds(report.category_ns[c]),
                  report.fraction(cat) * 100.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  rank completion: min=%.6f p50=%.6f max=%.6f s "
                "(skew %.1f%%)\n",
                seconds(report.rank_end_min_ns),
                seconds(report.rank_end_p50_ns),
                seconds(report.rank_end_max_ns), report.rank_skew * 100.0);
  out += buf;
  return out;
}

}  // namespace e10::obs
