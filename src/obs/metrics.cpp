#include "obs/metrics.h"

#include <cmath>
#include <stdexcept>

namespace e10::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::logic_error("Histogram: bounds must be strictly ascending");
    }
  }
}

std::size_t Histogram::bucket_index(std::int64_t value) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(std::int64_t value) {
  ++counts_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::int64_t Histogram::percentile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::logic_error("Histogram::percentile: q outside [0,1]");
  }
  if (count_ == 0) return 0;
  // Nearest-rank over the cumulative bucket counts.
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      if (i >= bounds_.size()) return max_;
      return std::clamp(bounds_[i], min_, max_);
    }
  }
  return max_;
}

std::vector<std::int64_t> exponential_bounds(std::int64_t first, int count,
                                             std::int64_t factor) {
  if (first <= 0 || count <= 0 || factor < 2) {
    throw std::logic_error("exponential_bounds: bad parameters");
  }
  std::vector<std::int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  std::int64_t bound = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

std::int64_t MetricsRegistry::gauge_high_water(const std::string& name) const {
  const Gauge* g = find_gauge(name);
  return g == nullptr ? 0 : g->high_water();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Json MetricsRegistry::as_json() const {
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, Json::integer(c.value()));
  }
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) {
    Json entry = Json::object();
    entry.set("value", Json::integer(g.value()));
    entry.set("high_water", Json::integer(g.high_water()));
    gauges.set(name, std::move(entry));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry.set("count", Json::integer(static_cast<std::int64_t>(h.count())));
    entry.set("sum", Json::integer(h.sum()));
    entry.set("min", Json::integer(h.min()));
    entry.set("max", Json::integer(h.max()));
    entry.set("p50", Json::integer(h.percentile(0.50)));
    entry.set("p95", Json::integer(h.percentile(0.95)));
    entry.set("p99", Json::integer(h.percentile(0.99)));
    Json buckets = Json::array();
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      Json bucket = Json::object();
      if (i < bounds.size()) {
        bucket.set("le", Json::integer(bounds[i]));
      } else {
        bucket.set("le", Json::str("inf"));
      }
      bucket.set("count", Json::integer(static_cast<std::int64_t>(counts[i])));
      buckets.push(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace e10::obs
