#include "obs/report.h"

#include <algorithm>
#include <fstream>

#include "common/units.h"

namespace e10::obs {

Json phase_table_json(const prof::Profiler& profiler) {
  Json table = Json::object();
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    const auto phase = static_cast<prof::Phase>(p);
    Json row = Json::object();
    row.set("min_s", Json::number(
                         units::to_seconds(profiler.min_over_ranks(phase))));
    row.set("p50_s", Json::number(units::to_seconds(
                         profiler.percentile_over_ranks(phase, 0.50))));
    row.set("p95_s", Json::number(units::to_seconds(
                         profiler.percentile_over_ranks(phase, 0.95))));
    row.set("p99_s", Json::number(units::to_seconds(
                         profiler.percentile_over_ranks(phase, 0.99))));
    row.set("avg_s", Json::number(
                         units::to_seconds(profiler.avg_over_ranks(phase))));
    row.set("max_s", Json::number(
                         units::to_seconds(profiler.max_over_ranks(phase))));
    table.set(prof::phase_name(phase), std::move(row));
  }
  return table;
}

Json run_report_json(const RunReportInputs& inputs) {
  Json report = Json::object();

  Json config = Json::object();
  for (const auto& [key, value] : inputs.config) {
    config.set(key, Json::str(value));
  }
  report.set("config", std::move(config));

  if (inputs.profiler != nullptr) {
    report.set("phases", phase_table_json(*inputs.profiler));
  }
  if (inputs.metrics != nullptr) {
    report.set("metrics", inputs.metrics->as_json());
  }

  Json derived = Json::object();
  for (const auto& [key, value] : inputs.derived) {
    derived.set(key, Json::number(value));
  }
  report.set("derived", std::move(derived));

  if (!inputs.analysis.is_null()) {
    report.set("analysis", inputs.analysis);
  }
  return report;
}

double flush_overlap_ratio(const MetricsRegistry& metrics,
                           const prof::Profiler& profiler) {
  const std::int64_t busy = metrics.counter_value(names::kSyncBusyNs);
  if (busy <= 0) return 0.0;
  // What each rank actually waited on its own sync grequests. The
  // not_hidden_sync phase would over-count: it times the collective close,
  // whose barrier charges the slowest rank's wait to everyone.
  Time visible = 0;
  for (int rank = 0; rank < profiler.ranks(); ++rank) {
    visible += profiler.rank_total(rank, prof::Phase::flush_wait);
  }
  const double hidden =
      static_cast<double>(busy) - static_cast<double>(visible);
  return std::clamp(hidden / static_cast<double>(busy), 0.0, 1.0);
}

Status write_json_file(const std::string& path, const Json& value) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::error(Errc::io_error, "report: cannot open " + path);
  }
  const std::string body = value.dump(2) + "\n";
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  file.flush();
  if (!file) return Status::error(Errc::io_error, "report: write failed");
  return Status::ok();
}

}  // namespace e10::obs
