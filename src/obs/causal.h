// Causal-edge recorder: the concrete sim::CausalObserver.
//
// Synchronization sites across the stack (mpi, net, cache, adio, pfs, the
// engine itself) report emissions, acknowledgements, bridges and overlays
// through the observer hook in sim/causal.h. This recorder stores them as
// flat vectors over virtual time — the event DAG obs/critical_path.{h,cpp}
// walks backward from job completion — and, when a Tracer is attached,
// mirrors every cross-process acknowledgement as a Chrome-trace flow arrow
// so the dependency is visible in the viewer, drawn between the lanes the
// two processes last opened spans on.
//
// Attaching is RAII: construction registers with the engine, destruction
// detaches. Recording never touches virtual time, so a recorded run stays
// byte-identical to an unrecorded one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_safety.h"
#include "common/units.h"
#include "sim/causal.h"
#include "sim/concurrency.h"
#include "sim/engine.h"

namespace e10::obs {

class Tracer;

class CausalRecorder : public sim::CausalObserver {
 public:
  struct Emission {
    sim::EdgeKind kind;
    sim::ProcessId pid;
    Time at;
    Time contended_ns;
  };
  struct Ack {
    sim::CausalToken token;  // 1-based index into emissions()
    sim::ProcessId pid;
    Time at;
  };
  struct Bridge {
    sim::EdgeKind kind;
    sim::ProcessId pid;
    Time issue;
    Time done;
  };
  struct Overlay {
    sim::EdgeKind kind;
    sim::ProcessId pid;
    Time begin;
    Time end;
  };

  /// Attaches to `engine`; `tracer` (optional) receives flow arrows for
  /// cross-process acks when tracing is enabled.
  explicit CausalRecorder(sim::Engine& engine, Tracer* tracer = nullptr);
  ~CausalRecorder() override;
  CausalRecorder(const CausalRecorder&) = delete;
  CausalRecorder& operator=(const CausalRecorder&) = delete;

  sim::CausalToken emit(sim::EdgeKind kind, sim::ProcessId pid, Time at,
                        Time contended_ns = 0) override;
  void ack(sim::CausalToken token, sim::ProcessId pid, Time at) override;
  void bridge(sim::EdgeKind kind, sim::ProcessId pid, Time issue,
              Time done) override;
  void interval(sim::EdgeKind kind, sim::ProcessId pid, Time begin,
                Time end) override;

  const std::vector<Emission>& emissions() const { return emissions_; }
  const std::vector<Ack>& acks() const { return acks_; }
  const std::vector<Bridge>& bridges() const { return bridges_; }
  const std::vector<Overlay>& overlays() const { return overlays_; }

  /// Emission an ack's token refers to.
  const Emission& source_of(const Ack& ack) const {
    return emissions_[ack.token - 1];
  }

  void clear();

 private:
  sim::Engine& engine_;
  Tracer* tracer_;
  /// The event log is appended by every process in the run — engine-
  /// atomically, since no hook yields. Each hook claims the recorder
  /// monitor, so a checker-attached run verifies that discipline (the
  /// pthread mutex a threaded tracer would need, see sim/concurrency.h).
  sim::SharedVar state_var_;
  std::vector<Emission> emissions_ E10_TRACKED_BY(state_var_);
  std::vector<Ack> acks_ E10_TRACKED_BY(state_var_);
  std::vector<Bridge> bridges_ E10_TRACKED_BY(state_var_);
  std::vector<Overlay> overlays_ E10_TRACKED_BY(state_var_);
};

}  // namespace e10::obs
