// Post-run critical-path extraction and bottleneck attribution.
//
// The paper's phase timelines (Fig. 2) show *where* time went per rank; the
// stacked bars (Figs. 5/6/8/10) show the max over ranks per phase. Neither
// answers "what actually bounded the end-to-end time": a phase can dominate
// the slowest rank yet be entirely off the critical path (hidden behind
// another rank's straggling). This analyzer walks the causal event DAG a
// CausalRecorder captured — message matches, collective releases, sync-queue
// hand-offs, flush-batch completions, pipeline joins, lock hand-overs,
// process joins — backward from job completion, extracts the critical path,
// and attributes every nanosecond of it to a named phase or resource:
// shuffle, aggregator write, flush, lock wait, NIC contention, compute,
// coordination, idle. Per-rank skew and the profiler's per-phase tail
// distributions ride along so one report answers both "what bounded this
// run" and "how unevenly".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/causal.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace e10::prof {
class Profiler;
}

namespace e10::obs {

/// Attribution categories for critical-path time. Order is report order.
enum class PathCategory : std::size_t {
  shuffle = 0,      ///< data shuffle: alltoall dissemination + isend/waitall
  write,            ///< aggregator write/read service (PFS or cache)
  flush,            ///< cache flush: batch service, sync waits, close drain
  lock_wait,        ///< stripe/extent lock hand-over wait
  nic_contention,   ///< NIC/memory queueing inside message latency
  compute,          ///< modeled application compute / request mapping
  coordination,     ///< open, offset exchange, error allreduce, round glue
  idle,             ///< on-path gap with no recorded span (scheduling slack)
  other,            ///< spans the category map does not know
  count
};

constexpr std::size_t kPathCategoryCount =
    static_cast<std::size_t>(PathCategory::count);

const char* path_category_name(PathCategory category);

/// One contiguous on-path segment (diagnostics; capped in the report).
struct PathSegment {
  sim::ProcessId pid = sim::kNoProcess;
  std::string process;  ///< engine name of pid ("rank 3", "sync:/out/f")
  Time begin = 0;
  Time end = 0;
  PathCategory category = PathCategory::other;
  std::string label;  ///< span name / edge kind that earned the category
};

struct CriticalPathReport {
  Time total_ns = 0;  ///< end-to-end virtual time walked (completion - 0)
  /// Attributed nanoseconds per category; sums to total_ns.
  std::array<Time, kPathCategoryCount> category_ns{};
  /// Category with the largest share (the headline bottleneck).
  PathCategory bottleneck = PathCategory::other;
  /// Fraction of total_ns attributed to a *named* category (not `other`).
  double attributed_fraction = 0.0;
  /// Causal hops the backward walk took (edges crossed).
  int hops = 0;
  /// True when the walk hit its iteration cap and charged the remainder to
  /// the lane it was on (should never happen on well-formed recordings).
  bool truncated = false;

  // Per-rank skew over the rank lanes' last span ends.
  Time rank_end_min_ns = 0;
  Time rank_end_p50_ns = 0;
  Time rank_end_max_ns = 0;
  /// (max - min) / max over rank completion times; 0 with <2 rank lanes.
  double rank_skew = 0.0;

  /// Max relative deviation between the trace's per-rank phase sums and the
  /// profiler's, over shuffle/write/flush (0 when no profiler given). Both
  /// sinks are fed by the same PhaseScope, so this is a self-check.
  double phase_consistency_dev = 0.0;

  /// On-path segments, newest first (capped at kMaxSegments).
  std::vector<PathSegment> segments;
  static constexpr std::size_t kMaxSegments = 256;

  double fraction(PathCategory c) const {
    return total_ns > 0 ? static_cast<double>(
                              category_ns[static_cast<std::size_t>(c)]) /
                              static_cast<double>(total_ns)
                        : 0.0;
  }
};

/// Walks the DAG backward from the last recorded activity and attributes
/// the whole [0, completion] interval. `profiler` (optional) feeds the
/// consistency self-check; it never influences the attribution itself.
CriticalPathReport analyze_critical_path(const Tracer& tracer,
                                         const CausalRecorder& recorder,
                                         const prof::Profiler* profiler);

/// Report section: totals, per-category ns + fraction, bottleneck, skew,
/// hops, and (with a profiler) per-phase p50/p95/p99/max tails in seconds.
Json critical_path_json(const CriticalPathReport& report,
                        const prof::Profiler* profiler);

/// Human-readable bottleneck table (fixed-width, one category per row).
std::string critical_path_table(const CriticalPathReport& report);

}  // namespace e10::obs
