// Runtime concurrency-analysis hooks for the DES engine.
//
// The primitives in sync.h, the cache layer's extent LockTable and any
// registered shared state report their events through a ConcurrencyObserver
// attached to the Engine. With no observer attached every hook is a single
// pointer test — the checker is strictly opt-in. The production observer is
// analysis::ConcurrencyChecker (Eraser-style lockset race detection plus a
// lock acquisition-order graph); see docs/static_analysis.md.
//
// Three lock kinds are reported:
//  - mutex:   sim::SimMutex — a blocking lock between simulated processes.
//  - extent:  a (path, extent) lock in cache::LockTable (ADIOI_WRITE_LOCK).
//  - monitor: a synthetic, non-blocking claim over an engine-atomic critical
//    section (code that cannot yield between entry and exit, or that only
//    blocks at well-defined predicate re-check points). Monitors model the
//    pthread mutexes the real (threaded) implementation would need around
//    structures the simulator makes atomic by cooperative scheduling — the
//    sync thread's inbox, the LockTable's own tables, the metrics registry.
//    Monitors participate in locksets but are excluded from the
//    acquisition-order graph: they cannot block, so they cannot deadlock.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.h"

namespace e10::sim {

/// Identity of a lock instance: the object address for mutexes/monitors, a
/// deterministic hash of (path, extent) for extent locks. Stable within a
/// run; reports must use interned names, never raw ids.
using LockId = std::uint64_t;

enum class LockKind { mutex, extent, monitor };

inline const char* to_string(LockKind kind) {
  switch (kind) {
    case LockKind::mutex: return "mutex";
    case LockKind::extent: return "extent";
    case LockKind::monitor: return "monitor";
  }
  return "?";
}

/// Event sink for the concurrency checker. Hooks fire only from inside
/// simulated processes; implementations may query the engine for the
/// current virtual time.
class ConcurrencyObserver {
 public:
  virtual ~ConcurrencyObserver() = default;

  /// A process is about to acquire `lock` and may block. Order-graph edges
  /// are recorded here so that cycles are found even on runs where the
  /// deadlock never actually fires.
  virtual void on_acquiring(ProcessId pid, LockId lock, LockKind kind,
                            const std::string& name) = 0;

  /// The acquisition succeeded; `lock` is now in `pid`'s lockset.
  virtual void on_acquired(ProcessId pid, LockId lock, LockKind kind,
                           const std::string& name) = 0;

  /// `pid` released `lock`.
  virtual void on_released(ProcessId pid, LockId lock) = 0;

  /// `pid` touched registered shared state. `key` identifies the state
  /// (shared across every instrumentation site of the same structure);
  /// `site` is a static "file:line" literal.
  virtual void on_shared_access(ProcessId pid, const void* key,
                                const std::string& name, bool is_write,
                                const char* site) = 0;

  /// Ownership handoff: the state identified by `key` was transferred
  /// through a synchronising operation (join, grequest completion), so the
  /// next accessor becomes its new exclusive owner.
  virtual void on_handoff(const void* key) = 0;

  /// One-line description of the locks `pid` holds and the lock it is
  /// waiting for, for enriched DeadlockError reports. Empty when idle.
  virtual std::string describe_process(ProcessId pid) const = 0;
};

/// A piece of registered shared state. Instrument accesses with the
/// E10_SHARED_READ / E10_SHARED_WRITE macros (or record() directly); every
/// call is a no-op branch while no observer is attached.
class SharedVar {
 public:
  SharedVar(Engine& engine, std::string name)
      : engine_(engine), name_(std::move(name)) {
    // A fresh variable can reuse a freed address (e.g. successive CacheFile
    // objects across files): restart its epoch so the checker never carries
    // a dead object's ownership state into this one.
    handoff();
  }
  SharedVar(const SharedVar&) = delete;
  SharedVar& operator=(const SharedVar&) = delete;

  void record(bool is_write, const char* site) const {
    ConcurrencyObserver* observer = engine_.concurrency_observer();
    if (observer != nullptr && engine_.in_process()) {
      observer->on_shared_access(engine_.current(), this, name_, is_write,
                                 site);
    }
  }

  /// Declares a synchronised ownership transfer (see
  /// ConcurrencyObserver::on_handoff).
  void handoff() const {
    if (ConcurrencyObserver* observer = engine_.concurrency_observer()) {
      observer->on_handoff(this);
    }
  }

  const std::string& name() const { return name_; }

 private:
  Engine& engine_;
  std::string name_;
};

/// RAII claim of a synthetic monitor lock over an engine-atomic critical
/// section (kind == LockKind::monitor; see the header comment). `object`
/// identifies the monitor — use the address of the guarded structure so
/// every entry point of the same monitor claims the same lock. The name is
/// consumed (interned) during construction; a temporary is fine.
class MonitorGuard {
 public:
  MonitorGuard(Engine& engine, const void* object, const std::string& name)
      : engine_(engine),
        id_(reinterpret_cast<LockId>(object)),
        observer_(engine.concurrency_observer()) {
    if (observer_ != nullptr && engine_.in_process()) {
      const ProcessId pid = engine_.current();
      observer_->on_acquiring(pid, id_, LockKind::monitor, name);
      observer_->on_acquired(pid, id_, LockKind::monitor, name);
      active_ = true;
    }
  }
  ~MonitorGuard() {
    if (active_) observer_->on_released(engine_.current(), id_);
  }
  MonitorGuard(const MonitorGuard&) = delete;
  MonitorGuard& operator=(const MonitorGuard&) = delete;

 private:
  Engine& engine_;
  LockId id_;
  ConcurrencyObserver* observer_;
  bool active_ = false;
};

/// Reports an access to shared state that has no SharedVar object of its
/// own (e.g. a structure owned by a layer below sim, like the metrics
/// registry). `key` must be the same at every site touching that state.
inline void shared_access(Engine& engine, const void* key, const char* name,
                          bool is_write, const char* site) {
  ConcurrencyObserver* observer = engine.concurrency_observer();
  if (observer != nullptr && engine.in_process()) {
    observer->on_shared_access(engine.current(), key, name, is_write, site);
  }
}

#define E10_CONCURRENCY_STR2_(x) #x
#define E10_CONCURRENCY_STR_(x) E10_CONCURRENCY_STR2_(x)
/// Static "file:line" literal naming an instrumentation site.
#define E10_SITE __FILE__ ":" E10_CONCURRENCY_STR_(__LINE__)

/// Records a read/write of a sim::SharedVar at the current site.
#define E10_SHARED_READ(var) (var).record(false, E10_SITE)
#define E10_SHARED_WRITE(var) (var).record(true, E10_SITE)

}  // namespace e10::sim
