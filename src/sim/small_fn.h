// Move-only type-erased callable with a large inline buffer.
//
// Process bodies are lambdas capturing a handful of handles (a Comm, a
// few pointers, a path string). std::function's small-buffer optimisation
// tops out at two pointers on libstdc++, so nearly every Engine::spawn paid
// a heap allocation just to park the capture. SmallFn erases the same
// void() signature with a 128-byte inline buffer — every capture in the
// tree fits — and falls back to the heap only for oversized callables, so
// spawning a process allocates nothing in the common case.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace e10::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 128;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(std::move(other)); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->call(buffer_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the held callable (releasing captured state) and empties.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

 private:
  struct Ops {
    void (*call)(void* buffer);
    void (*destroy)(void* buffer);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buffer) { (*std::launder(static_cast<Fn*>(buffer)))(); },
      [](void* buffer) { std::launder(static_cast<Fn*>(buffer))->~Fn(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* buffer) { (**std::launder(static_cast<Fn**>(buffer)))(); },
      [](void* buffer) { delete *std::launder(static_cast<Fn**>(buffer)); },
      [](void* dst, void* src) {
        Fn** from = std::launder(static_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
        // Ownership moved to dst; nothing to destroy in src.
      },
  };

  void move_from(SmallFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buffer_, other.buffer_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buffer_[kInlineBytes]{};
  const Ops* ops_ = nullptr;
};

}  // namespace e10::sim
