// Non-blocking resource timelines.
//
// A ResourceTimeline models a serially-reusable resource (a NIC, an SSD, a
// disk array) as a "next free" cursor: a reservation at time `now` for
// `service` duration completes at max(next_free, now) + service. Because the
// engine always runs the lowest-virtual-time process first, reservations are
// issued in nondecreasing virtual time and the FIFO timeline is causally
// consistent without any blocking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/units.h"

namespace e10::sim {

/// A reserved [start, end) slot on a resource timeline.
struct Interval {
  Time start;
  Time end;
};

class ResourceTimeline {
 public:
  /// Reserves `service` time starting no earlier than `now`; returns the
  /// granted slot (start = when the resource became available).
  Interval reserve_interval(Time now, Time service) {
    if (service < 0) throw std::logic_error("negative service time");
    const Time start = std::max(next_free_, now);
    next_free_ = start + service;
    ++reservations_;
    busy_ += service;
    return Interval{start, next_free_};
  }

  /// Reserves `service` time starting no earlier than `now`; returns the
  /// completion time.
  Time reserve(Time now, Time service) {
    return reserve_interval(now, service).end;
  }

  Time next_free() const { return next_free_; }
  std::uint64_t reservations() const { return reservations_; }
  /// Total busy (service) time accumulated; utilization diagnostics.
  Time busy_time() const { return busy_; }

 private:
  Time next_free_ = 0;
  std::uint64_t reservations_ = 0;
  Time busy_ = 0;
};

/// A resource with `lanes` identical parallel service channels (e.g. a
/// storage server with several independent targets); each reservation takes
/// the earliest-free lane.
class MultiLaneTimeline {
 public:
  explicit MultiLaneTimeline(std::size_t lanes) : lanes_(lanes) {
    if (lanes == 0) throw std::logic_error("MultiLaneTimeline with 0 lanes");
  }

  Time reserve(Time now, Time service) {
    auto it = std::min_element(lanes_.begin(), lanes_.end(),
                               [](const ResourceTimeline& a,
                                  const ResourceTimeline& b) {
                                 return a.next_free() < b.next_free();
                               });
    return it->reserve(now, service);
  }

  std::size_t lanes() const { return lanes_.size(); }

 private:
  std::vector<ResourceTimeline> lanes_;
};

}  // namespace e10::sim
