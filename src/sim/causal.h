// Causal-edge observer hook for critical-path analysis.
//
// The DES engine schedules fibers over virtual time, but the *reasons* a
// process resumed — a message arrived, a collective released, a flush batch
// reached the media, a stripe lock was handed over — live inside the
// synchronization primitives and cost models. This observer interface lets
// those sites report the causal structure of a run as a DAG of emissions
// (potential wake-up sources) and acknowledgements (a waiter's clock was
// advanced by that source), which obs/critical_path.{h,cpp} walks backward
// from job completion to attribute end-to-end time to phases and resources.
//
// Mirrors sim/concurrency.h: detached (the default) every hook is a single
// null-pointer branch; attaching never changes virtual time, so a traced
// run is byte-identical to an untraced one.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "sim/engine.h"

namespace e10::sim {

/// Identity of one recorded emission; 0 means "no edge".
using CausalToken = std::uint64_t;

/// What kind of dependency an edge expresses. The analyzer uses it to
/// attribute the virtual-time gap between the emission and the wake-up.
enum class EdgeKind {
  message,     ///< point-to-point send -> matched receive (mpi/net)
  collective,  ///< last arriver -> every released participant (mpi)
  grequest,    ///< generalized-request completion -> waiter (cache sync)
  sync_queue,  ///< sync-request enqueue -> sync-thread drain (cache)
  batch_done,  ///< flush batch issue -> media-durable completion (cache)
  write_join,  ///< nonblocking write issue -> pipeline join (adio)
  lock_wait,   ///< lock release -> blocked acquirer (cache/pfs stripe lock)
  process,     ///< process finish -> joiner (engine)
};

const char* edge_kind_name(EdgeKind kind);

class CausalObserver {
 public:
  virtual ~CausalObserver() = default;

  /// Records a potential causal source: process `pid` produced, at virtual
  /// time `at` (which may lie in the emitter's future for completion-time
  /// models), something another process may wait on. `contended_ns` carries
  /// resource queueing embedded in the edge latency (NIC queue wait for
  /// messages). Returns the token a later ack() refers to.
  virtual CausalToken emit(EdgeKind kind, ProcessId pid, Time at,
                           Time contended_ns = 0) = 0;

  /// Records that process `pid`'s progress to time `at` was gated on the
  /// emission identified by `token` (its blocking wait ended there).
  virtual void ack(CausalToken token, ProcessId pid, Time at) = 0;

  /// Records an asynchronous service interval [issue, done] whose
  /// completion gated `pid`'s progress at `done` (a stalled pipeline join,
  /// a deferred flush batch waited out): the service ran on a background
  /// resource while the issuer's lane shows unrelated foreground work.
  virtual void bridge(EdgeKind kind, ProcessId pid, Time issue,
                      Time done) = 0;

  /// Records an attribution overlay: within work already attributed to
  /// `pid`, the sub-interval [begin, end] was spent in `kind` (e.g. PFS
  /// stripe-lock wait inside a write's service time).
  virtual void interval(EdgeKind kind, ProcessId pid, Time begin,
                        Time end) = 0;
};

inline const char* edge_kind_name(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::message: return "message";
    case EdgeKind::collective: return "collective";
    case EdgeKind::grequest: return "grequest";
    case EdgeKind::sync_queue: return "sync_queue";
    case EdgeKind::batch_done: return "batch_done";
    case EdgeKind::write_join: return "write_join";
    case EdgeKind::lock_wait: return "lock_wait";
    case EdgeKind::process: return "process";
  }
  return "?";
}

}  // namespace e10::sim
