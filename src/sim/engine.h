// Deterministic discrete-event simulation (DES) engine.
//
// Simulated processes (MPI ranks, cache sync threads) are fibers scheduled
// cooperatively on the caller's thread: the engine always resumes the
// runnable process with the smallest (virtual time, sequence) key, so a
// run is a deterministic function of the inputs and seeds. All blocking
// primitives in sync.h / mailbox.h park the calling fiber through the same
// switch. Fibers make a context switch a userspace register swap instead of
// an OS thread handoff — the difference between simulating 512 ranks in
// seconds versus minutes.
//
// Hot-path layout (docs/performance.md has the inventory and numbers):
//   - ready queue: allocation-free binary min-heap (sim/ready_queue.h)
//     preserving the exact (time, seq) FIFO order of the original
//     std::map-based scheduler,
//   - processes: chunked arena with stable addresses, indexed O(1) by
//     ProcessId,
//   - fiber stacks: pooled and recycled across process lifetimes,
//   - process bodies: SmallFn (sim/small_fn.h) with a 128-byte inline
//     buffer instead of std::function,
//   - context switch: a ~10-instruction userspace register swap on
//     x86-64 (no sigprocmask syscalls), with a ucontext fallback for
//     other architectures (E10_FAST_FIBERS below).
//
// Virtual time only moves forward through explicit costs: Engine::delay()
// (compute phases, modeled service times) and wake-up times passed to
// make_ready() (message arrival, I/O completion).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "sim/ready_queue.h"
#include "sim/small_fn.h"

// Fast userspace context switch: saves/restores only the sysv callee-saved
// registers plus the FP control words. Everything this build targets is
// x86-64 Linux; the ucontext fallback keeps other hosts working.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define E10_FAST_FIBERS 1
#else
#define E10_FAST_FIBERS 0
#include <ucontext.h>
#endif

namespace e10::sim {

class Engine;
class ConcurrencyObserver;  // concurrency.h
class CausalObserver;       // causal.h

using ProcessId = std::uint64_t;
inline constexpr ProcessId kNoProcess = ~ProcessId{0};

/// Thrown out of Engine::run() when every live process is blocked. The
/// message lists, per blocked process: its name, the primitive it blocks
/// on, its virtual clock, and (when a concurrency observer is attached)
/// the locks it holds and waits for.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown inside a simulated process when the engine tears it down
/// (destructor / error propagation). Process bodies must not swallow it.
class ProcessCancelled {};

/// Deterministic self-metrics: pure counts of scheduler activity, no wall
/// clock anywhere (the wall-clock lint rule bans it in src/). Two runs of
/// the same scenario produce identical numbers, which makes these counters
/// usable as CI regression gates and fuzz determinism oracles where
/// host-time measurements would flake.
struct EngineStats {
  /// Ready-queue pops dispatched by run() (excludes cancel_all teardown).
  std::uint64_t events = 0;
  /// Fiber resumes (run() dispatches + cancel_all unwinds).
  std::uint64_t switches = 0;
  /// Processes ever spawned.
  std::uint64_t spawned = 0;
  /// Peak ready-queue depth observed at insert.
  std::uint64_t max_ready_depth = 0;
  /// Spawns whose fiber stack came from the recycle pool (not a fresh
  /// allocation).
  std::uint64_t stack_reuses = 0;
};

/// Handle to a spawned process; join() blocks the calling process until the
/// target finishes and advances the caller's clock to the finish time.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  ProcessId id() const { return id_; }
  bool valid() const { return engine_ != nullptr; }

  /// Callable only from inside another simulated process.
  void join() const;

  /// True once the target's body has returned.
  bool finished() const;

 private:
  friend class Engine;
  ProcessHandle(Engine* engine, ProcessId id) : engine_(engine), id_(id) {}
  Engine* engine_ = nullptr;
  ProcessId id_ = kNoProcess;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Creates a process whose body starts at the spawner's current time
  /// (or at time 0 when spawned from outside run()). The rvalue overload
  /// steals the name's storage; the string_view/char* overloads copy the
  /// bytes exactly once. SmallFn keeps typical capture lists out of the
  /// heap entirely.
  ProcessHandle spawn(std::string&& name, SmallFn body);
  ProcessHandle spawn(std::string_view name, SmallFn body);
  ProcessHandle spawn(const char* name, SmallFn body) {
    return spawn(std::string_view(name), std::move(body));
  }

  /// Pre-sizes the process arena, ready queue, and stack pool for n
  /// processes. Optional — everything grows on demand — but a World that
  /// knows its rank count can avoid mid-run growth entirely.
  void reserve_processes(std::size_t n);

  /// Runs until no process is runnable. Rethrows the first exception a
  /// process body threw; throws DeadlockError if live processes remain
  /// blocked. Must be called from outside any simulated process.
  void run();

  /// Arms a one-shot crash point: the next run() stops before resuming any
  /// process scheduled at or after t, cancels every live process (fiber
  /// unwinding via ProcessCancelled), and returns normally with stopped()
  /// true. Models killing the job at virtual time t — no simulated work at
  /// or after t happens; surviving state (files, journals) reflects exactly
  /// what was durable before the crash. The arm is consumed by the next
  /// run() whether or not it fires, so a follow-up run() (e.g. a recovery
  /// pass spawned from outside) proceeds normally from the crash time.
  void stop_at(Time t) { stop_at_ = t; }

  /// True when the last run() was terminated by a stop_at() deadline rather
  /// than by natural completion. Reset at the start of every run().
  bool stopped() const { return stopped_; }

  /// Virtual time of the running process (or the last scheduled time when
  /// called from outside).
  Time now() const { return sim_time_; }

  // ---- Process-context operations (must run inside a simulated process) --

  /// Advances the caller's clock by d (>= 0); yields only if another
  /// process becomes due first.
  void delay(Time d);

  /// Advances the caller's clock to at least t; no-op if t is in the past.
  void advance_to(Time t);

  /// Reschedules the caller at its current time, behind peers at that time.
  void yield();

  /// Identity of the running process.
  ProcessId current() const;

  /// True when called from inside a simulated process (current() would
  /// succeed). Lets hooks that may run from either context decide whether
  /// they can charge virtual time.
  bool in_process() const { return current_ != nullptr; }

  /// log::ContextHook — reports the active engine's virtual time and the
  /// running process's name; false outside any simulated process.
  static bool log_context(std::int64_t& now_ns, std::string& name);

  /// Name of a live process (for diagnostics).
  const std::string& name_of(ProcessId pid) const;

  // ---- Low-level hooks for synchronization primitives --------------------

  /// Parks the running process until make_ready() is called for it. `why`
  /// appears in deadlock reports.
  void block(const char* why);

  /// Makes a blocked process runnable at max(its clock, not_before).
  /// Callable from any process context (and, for completion events computed
  /// by resource models, with not_before in the future).
  void make_ready(ProcessId pid, Time not_before);

  /// True while `pid` is parked in block(). Lets primitives skip stale
  /// waiter entries left behind by processes torn down mid-wait (error
  /// unwinding after a deadlock cancels every fiber; waking one would be
  /// fatal).
  bool is_blocked(ProcessId pid) const;

  /// Attaches (or detaches, with nullptr) the concurrency checker. The
  /// synchronization primitives and E10_SHARED_* instrumentation report
  /// through this hook; with no observer attached each hook is one branch.
  void set_concurrency_observer(ConcurrencyObserver* observer) {
    concurrency_observer_ = observer;
  }
  ConcurrencyObserver* concurrency_observer() const {
    return concurrency_observer_;
  }

  /// Attaches (or detaches, with nullptr) the causal-edge recorder
  /// (sim/causal.h). Synchronization sites across the stack report
  /// wake-up dependencies through this hook for post-run critical-path
  /// analysis; detached, each hook is one branch and nothing changes.
  void set_causal_observer(CausalObserver* observer) {
    causal_observer_ = observer;
  }
  CausalObserver* causal_observer() const { return causal_observer_; }

  /// Number of processes whose body has not yet returned.
  std::size_t live_processes() const { return live_; }

  /// Total processes ever spawned (diagnostics / tests).
  std::size_t spawned_processes() const { return process_count_; }

  /// Count of fiber switches performed (diagnostics / micro-bench).
  std::uint64_t switch_count() const { return switches_; }

  /// Deterministic scheduler counters (see EngineStats). Safe to read at
  /// any point; typically sampled after run() returns.
  EngineStats stats() const {
    EngineStats s;
    s.events = events_;
    s.switches = switches_;
    s.spawned = process_count_;
    s.max_ready_depth = max_ready_depth_;
    s.stack_reuses = stack_reuses_;
    return s;
  }

  /// Fiber stack size; processes must stay within it.
  static constexpr std::size_t kStackBytes = 512 * 1024;

 private:
  struct Process {
    std::string name;
    ProcessId id = kNoProcess;
    Time clock = 0;
    enum class State { ready, running, blocked, finished } state = State::ready;
    const char* block_reason = nullptr;
    SmallFn body;
#if E10_FAST_FIBERS
    /// Saved stack pointer while suspended (fast-switch frame on the
    /// fiber's own stack).
    void* stack_pointer = nullptr;
#else
    ucontext_t context{};
#endif
    std::unique_ptr<char[]> stack;
    bool cancelled = false;
    std::exception_ptr error;
    std::vector<ProcessId> joiners;
    /// Causal emission of this process's finish (0 = none recorded).
    std::uint64_t finish_token = 0;
  };

  // Arena geometry: processes live in fixed-size chunks so addresses stay
  // stable as the table grows (the ready queue and current_ hold raw
  // pointers) and a spawn never moves or reallocates existing processes.
  static constexpr std::size_t kChunkShift = 6;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  friend class ProcessHandle;

  Process& proc(ProcessId pid) const;
  Process& allocate_process();
  std::unique_ptr<char[]> acquire_stack();
  void release_stack(std::unique_ptr<char[]> stack);
  void prepare_fiber(Process& p);  // arms the trampoline on a fresh stack
  void insert_ready(Process& p);
  void resume(Process& p);         // engine context -> fiber
  void switch_to_engine();         // fiber -> engine context; rethrows cancel
  [[noreturn]] void finish_current();  // fiber epilogue; never returns
  void cancel_all();
  static void trampoline();        // fiber entry (uses current_run_target)

  std::vector<std::unique_ptr<Process[]>> chunks_;
  std::size_t process_count_ = 0;
  // Ready queue keyed by (virtual time, admission sequence); pops in the
  // exact order the original std::map iterated (ready_queue.h).
  ReadyQueue<Process*> ready_;
  // Retired fiber stacks awaiting reuse by future spawns.
  std::vector<std::unique_ptr<char[]>> stack_pool_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t max_ready_depth_ = 0;
  std::uint64_t stack_reuses_ = 0;
  Time sim_time_ = 0;
  std::optional<Time> stop_at_;
  bool stopped_ = false;
  Process* current_ = nullptr;
#if E10_FAST_FIBERS
  /// Engine-side saved stack pointer while a fiber runs.
  void* engine_stack_pointer_ = nullptr;
#else
  ucontext_t engine_context_{};
#endif
  /// Engine-side stack bounds, learned at the first fiber entry; fibers
  /// report them to ASan when switching back (no-ops without ASan).
  const void* asan_engine_stack_ = nullptr;
  std::size_t asan_engine_stack_size_ = 0;
  bool running_ = false;
  std::size_t live_ = 0;
  ConcurrencyObserver* concurrency_observer_ = nullptr;
  CausalObserver* causal_observer_ = nullptr;
};

}  // namespace e10::sim
