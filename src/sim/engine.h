// Deterministic discrete-event simulation (DES) engine.
//
// Simulated processes (MPI ranks, cache sync threads) are ucontext fibers
// scheduled cooperatively on the caller's thread: the engine always resumes
// the runnable process with the smallest (virtual time, sequence) key, so a
// run is a deterministic function of the inputs and seeds. All blocking
// primitives in sync.h / mailbox.h park the calling fiber through the same
// switch. Fibers make a context switch a userspace register swap instead of
// an OS thread handoff — the difference between simulating 512 ranks in
// seconds versus minutes.
//
// Virtual time only moves forward through explicit costs: Engine::delay()
// (compute phases, modeled service times) and wake-up times passed to
// make_ready() (message arrival, I/O completion).
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.h"

namespace e10::sim {

class Engine;
class ConcurrencyObserver;  // concurrency.h
class CausalObserver;       // causal.h

using ProcessId = std::uint64_t;
inline constexpr ProcessId kNoProcess = ~ProcessId{0};

/// Thrown out of Engine::run() when every live process is blocked. The
/// message lists, per blocked process: its name, the primitive it blocks
/// on, its virtual clock, and (when a concurrency observer is attached)
/// the locks it holds and waits for.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown inside a simulated process when the engine tears it down
/// (destructor / error propagation). Process bodies must not swallow it.
class ProcessCancelled {};

/// Handle to a spawned process; join() blocks the calling process until the
/// target finishes and advances the caller's clock to the finish time.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  ProcessId id() const { return id_; }
  bool valid() const { return engine_ != nullptr; }

  /// Callable only from inside another simulated process.
  void join() const;

  /// True once the target's body has returned.
  bool finished() const;

 private:
  friend class Engine;
  ProcessHandle(Engine* engine, ProcessId id) : engine_(engine), id_(id) {}
  Engine* engine_ = nullptr;
  ProcessId id_ = kNoProcess;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Creates a process whose body starts at the spawner's current time
  /// (or at time 0 when spawned from outside run()).
  ProcessHandle spawn(std::string name, std::function<void()> body);

  /// Runs until no process is runnable. Rethrows the first exception a
  /// process body threw; throws DeadlockError if live processes remain
  /// blocked. Must be called from outside any simulated process.
  void run();

  /// Arms a one-shot crash point: the next run() stops before resuming any
  /// process scheduled at or after t, cancels every live process (fiber
  /// unwinding via ProcessCancelled), and returns normally with stopped()
  /// true. Models killing the job at virtual time t — no simulated work at
  /// or after t happens; surviving state (files, journals) reflects exactly
  /// what was durable before the crash. The arm is consumed by the next
  /// run() whether or not it fires, so a follow-up run() (e.g. a recovery
  /// pass spawned from outside) proceeds normally from the crash time.
  void stop_at(Time t) { stop_at_ = t; }

  /// True when the last run() was terminated by a stop_at() deadline rather
  /// than by natural completion. Reset at the start of every run().
  bool stopped() const { return stopped_; }

  /// Virtual time of the running process (or the last scheduled time when
  /// called from outside).
  Time now() const { return sim_time_; }

  // ---- Process-context operations (must run inside a simulated process) --

  /// Advances the caller's clock by d (>= 0); yields only if another
  /// process becomes due first.
  void delay(Time d);

  /// Advances the caller's clock to at least t; no-op if t is in the past.
  void advance_to(Time t);

  /// Reschedules the caller at its current time, behind peers at that time.
  void yield();

  /// Identity of the running process.
  ProcessId current() const;

  /// True when called from inside a simulated process (current() would
  /// succeed). Lets hooks that may run from either context decide whether
  /// they can charge virtual time.
  bool in_process() const { return current_ != nullptr; }

  /// log::ContextHook — reports the active engine's virtual time and the
  /// running process's name; false outside any simulated process.
  static bool log_context(std::int64_t& now_ns, std::string& name);

  /// Name of a live process (for diagnostics).
  const std::string& name_of(ProcessId pid) const;

  // ---- Low-level hooks for synchronization primitives --------------------

  /// Parks the running process until make_ready() is called for it. `why`
  /// appears in deadlock reports.
  void block(const char* why);

  /// Makes a blocked process runnable at max(its clock, not_before).
  /// Callable from any process context (and, for completion events computed
  /// by resource models, with not_before in the future).
  void make_ready(ProcessId pid, Time not_before);

  /// True while `pid` is parked in block(). Lets primitives skip stale
  /// waiter entries left behind by processes torn down mid-wait (error
  /// unwinding after a deadlock cancels every fiber; waking one would be
  /// fatal).
  bool is_blocked(ProcessId pid) const;

  /// Attaches (or detaches, with nullptr) the concurrency checker. The
  /// synchronization primitives and E10_SHARED_* instrumentation report
  /// through this hook; with no observer attached each hook is one branch.
  void set_concurrency_observer(ConcurrencyObserver* observer) {
    concurrency_observer_ = observer;
  }
  ConcurrencyObserver* concurrency_observer() const {
    return concurrency_observer_;
  }

  /// Attaches (or detaches, with nullptr) the causal-edge recorder
  /// (sim/causal.h). Synchronization sites across the stack report
  /// wake-up dependencies through this hook for post-run critical-path
  /// analysis; detached, each hook is one branch and nothing changes.
  void set_causal_observer(CausalObserver* observer) {
    causal_observer_ = observer;
  }
  CausalObserver* causal_observer() const { return causal_observer_; }

  /// Number of processes whose body has not yet returned.
  std::size_t live_processes() const { return live_; }

  /// Total processes ever spawned (diagnostics / tests).
  std::size_t spawned_processes() const { return processes_.size(); }

  /// Count of fiber switches performed (diagnostics / micro-bench).
  std::uint64_t switch_count() const { return switches_; }

  /// Fiber stack size; processes must stay within it.
  static constexpr std::size_t kStackBytes = 512 * 1024;

 private:
  struct Process {
    std::string name;
    ProcessId id = kNoProcess;
    Time clock = 0;
    enum class State { ready, running, blocked, finished } state = State::ready;
    const char* block_reason = nullptr;
    std::function<void()> body;
    ucontext_t context{};
    std::unique_ptr<char[]> stack;
    bool cancelled = false;
    std::exception_ptr error;
    std::vector<ProcessId> joiners;
    /// Causal emission of this process's finish (0 = none recorded).
    std::uint64_t finish_token = 0;
  };

  friend class ProcessHandle;

  Process& proc(ProcessId pid) const;
  void insert_ready(Process& p);
  void resume(Process& p);         // engine context -> fiber
  void switch_to_engine();         // fiber -> engine context; rethrows cancel
  void finish_current();           // fiber epilogue; never returns
  void cancel_all();
  static void trampoline();        // fiber entry (uses current_run_target)

  std::vector<std::unique_ptr<Process>> processes_;
  // Ready queue keyed by (virtual time, admission sequence).
  std::map<std::pair<Time, std::uint64_t>, Process*> ready_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t switches_ = 0;
  Time sim_time_ = 0;
  std::optional<Time> stop_at_;
  bool stopped_ = false;
  Process* current_ = nullptr;
  ucontext_t engine_context_{};
  /// Engine-side stack bounds, learned at the first fiber entry; fibers
  /// report them to ASan when switching back (no-ops without ASan).
  const void* asan_engine_stack_ = nullptr;
  std::size_t asan_engine_stack_size_ = 0;
  bool running_ = false;
  std::size_t live_ = 0;
  ConcurrencyObserver* concurrency_observer_ = nullptr;
  CausalObserver* causal_observer_ = nullptr;
};

}  // namespace e10::sim
