#include "sim/sync.h"

#include <algorithm>
#include <stdexcept>

#include "sim/concurrency.h"

namespace e10::sim {

void SimMutex::lock() {
  ConcurrencyObserver* observer =
      engine_.in_process() ? engine_.concurrency_observer() : nullptr;
  if (observer != nullptr) {
    observer->on_acquiring(engine_.current(),
                           reinterpret_cast<LockId>(this), LockKind::mutex,
                           name_);
  }
  if (!locked_) {
    locked_ = true;
  } else {
    waiters_.push_back(engine_.current());
    engine_.block("SimMutex::lock");
    // Woken by unlock(): the mutex was handed to us and is still locked.
  }
  if (observer != nullptr) {
    observer->on_acquired(engine_.current(), reinterpret_cast<LockId>(this),
                          LockKind::mutex, name_);
  }
}

void SimMutex::unlock() {
  if (!locked_) throw std::logic_error("SimMutex::unlock while unlocked");
  if (ConcurrencyObserver* observer = engine_.concurrency_observer();
      observer != nullptr && engine_.in_process()) {
    observer->on_released(engine_.current(), reinterpret_cast<LockId>(this));
  }
  // Hand the mutex directly to the next waiter; it stays locked. A waiter
  // cancelled while parked in lock() leaves a stale queue entry (its fiber
  // unwound out of block()); skip those — waking a dead process during
  // error unwinding would terminate the program.
  while (!waiters_.empty()) {
    const ProcessId next = waiters_.front();
    waiters_.pop_front();
    if (engine_.is_blocked(next)) {
      engine_.make_ready(next, engine_.now());
      return;
    }
  }
  locked_ = false;
}

void SimCondVar::wait(SimMutex& mutex) {
  waiters_.push_back(engine_.current());
  mutex.unlock();
  engine_.block("SimCondVar::wait");
  mutex.lock();
}

void SimCondVar::notify_one() {
  if (waiters_.empty()) return;
  const ProcessId next = waiters_.front();
  waiters_.pop_front();
  engine_.make_ready(next, engine_.now());
}

void SimCondVar::notify_all() {
  while (!waiters_.empty()) notify_one();
}

void SimSemaphore::acquire() {
  if (count_ > 0) {
    --count_;
    return;
  }
  waiters_.push_back(engine_.current());
  engine_.block("SimSemaphore::acquire");
}

void SimSemaphore::release(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (!waiters_.empty()) {
      const ProcessId next = waiters_.front();
      waiters_.pop_front();
      engine_.make_ready(next, engine_.now());
    } else {
      ++count_;
    }
  }
}

void SimEvent::set() { set_at(engine_.now()); }

void SimEvent::set_at(Time at) {
  if (set_) throw std::logic_error("SimEvent::set on already-set event");
  set_ = true;
  at_ = at;
  for (const ProcessId w : waiters_) engine_.make_ready(w, at_);
  waiters_.clear();
}

void SimEvent::wait() {
  if (set_) {
    engine_.advance_to(at_);
    return;
  }
  waiters_.push_back(engine_.current());
  engine_.block("SimEvent::wait");
}

void SimBarrier::arrive_and_wait() {
  if (participants_ == 0) {
    throw std::logic_error("SimBarrier with zero participants");
  }
  max_arrival_ = std::max(max_arrival_, engine_.now());
  if (arrived_.size() + 1 < participants_) {
    arrived_.push_back(engine_.current());
    const std::uint64_t my_generation = generation_;
    engine_.block("SimBarrier::arrive_and_wait");
    (void)my_generation;
    return;
  }
  // Last arriver releases everyone at the max arrival time.
  const Time release_at = max_arrival_;
  std::vector<ProcessId> to_release;
  to_release.swap(arrived_);
  max_arrival_ = 0;
  ++generation_;
  for (const ProcessId w : to_release) engine_.make_ready(w, release_at);
  engine_.advance_to(release_at);
}

}  // namespace e10::sim
