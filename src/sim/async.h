// Accounting for asynchronous, completion-time-based operations.
//
// Layers that model asynchronous I/O compute a completion time from their
// resource timelines and return it instead of advancing the caller's clock
// (LocalFs::write_async, Pfs::write_async); the issuer joins later through a
// generalized request. OverlapAccumulator does the virtual-time arithmetic
// at those join points: how much of each [issued, done) service interval
// elapsed while the issuing process was doing other work (hidden), how much
// the issuer had to stall at the join, and the resulting overlap ratio —
// the write-pipeline analogue of the sync thread's flush-overlap ratio.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace e10::sim {

/// Outcome of joining one async operation.
struct JoinOutcome {
  Time hidden = 0;  // service time that elapsed before the join
  Time stall = 0;   // service time the joiner had to wait out
};

class OverlapAccumulator {
 public:
  /// Records the join of an operation issued at `issued` with completion
  /// time `done`, joined at `join_at` (issued <= join_at). The service
  /// interval [issued, done) splits into a hidden part (already elapsed at
  /// join time) and a stall part (still ahead of the joiner).
  JoinOutcome on_join(Time issued, Time done, Time join_at) {
    JoinOutcome outcome;
    if (done < issued) done = issued;
    if (join_at < issued) join_at = issued;
    const Time service = done - issued;
    outcome.hidden = join_at >= done ? service : join_at - issued;
    outcome.stall = service - outcome.hidden;
    ++joins_;
    if (outcome.stall > 0) ++stalls_;
    service_ += service;
    hidden_ += outcome.hidden;
    stall_ += outcome.stall;
    return outcome;
  }

  std::uint64_t joins() const { return joins_; }
  /// Joins that had to wait for an incomplete operation.
  std::uint64_t stalls() const { return stalls_; }
  /// Total service time across joined operations.
  Time service_time() const { return service_; }
  /// Service time that overlapped the issuer's other work.
  Time hidden_time() const { return hidden_; }
  /// Service time the issuer waited out at join points.
  Time stall_time() const { return stall_; }

  /// hidden / service in [0, 1]; 0 when nothing was joined.
  double overlap_ratio() const {
    if (service_ == 0) return 0.0;
    return static_cast<double>(hidden_) / static_cast<double>(service_);
  }

 private:
  std::uint64_t joins_ = 0;
  std::uint64_t stalls_ = 0;
  Time service_ = 0;
  Time hidden_ = 0;
  Time stall_ = 0;
};

}  // namespace e10::sim
