// Blocking primitives for simulated processes: mutex, condition variable,
// semaphore, one-shot event, and cyclic barrier — all in virtual time.
//
// SimMutex carries Clang thread-safety annotations (E10_CAPABILITY et al.,
// common/thread_safety.h) so state guarded by a simulated mutex can be
// declared E10_GUARDED_BY and checked at compile time, and reports its
// acquisitions to the engine's ConcurrencyObserver (sim/concurrency.h) so
// the runtime lockset checker sees it too.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_safety.h"
#include "common/units.h"
#include "sim/engine.h"

namespace e10::sim {

/// Mutual exclusion between simulated processes; FIFO hand-off. The
/// optional name labels the mutex in race/deadlock reports.
class E10_CAPABILITY("mutex") SimMutex {
 public:
  explicit SimMutex(Engine& engine, std::string name = "mutex")
      : engine_(engine), name_(std::move(name)) {}
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void lock() E10_ACQUIRE();
  void unlock() E10_RELEASE();
  bool locked() const { return locked_; }
  const std::string& name() const { return name_; }

 private:
  friend class SimCondVar;
  Engine& engine_;
  std::string name_;
  bool locked_ = false;
  std::deque<ProcessId> waiters_;
};

/// RAII lock for SimMutex.
class E10_SCOPED_CAPABILITY SimLock {
 public:
  explicit SimLock(SimMutex& mutex) E10_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~SimLock() E10_RELEASE() { mutex_.unlock(); }
  SimLock(const SimLock&) = delete;
  SimLock& operator=(const SimLock&) = delete;

 private:
  SimMutex& mutex_;
};

/// Condition variable over SimMutex. Wakes are FIFO; as with std::condition_
/// variable, users must re-check their predicate in a loop.
class SimCondVar {
 public:
  explicit SimCondVar(Engine& engine) : engine_(engine) {}
  SimCondVar(const SimCondVar&) = delete;
  SimCondVar& operator=(const SimCondVar&) = delete;

  void wait(SimMutex& mutex) E10_REQUIRES(mutex);
  void notify_one();
  void notify_all();

 private:
  Engine& engine_;
  std::deque<ProcessId> waiters_;
};

/// Counting semaphore; FIFO grants.
class SimSemaphore {
 public:
  SimSemaphore(Engine& engine, std::int64_t initial)
      : engine_(engine), count_(initial) {}
  SimSemaphore(const SimSemaphore&) = delete;
  SimSemaphore& operator=(const SimSemaphore&) = delete;

  void acquire();
  void release(std::int64_t n = 1);
  std::int64_t available() const { return count_; }

 private:
  Engine& engine_;
  std::int64_t count_;
  std::deque<ProcessId> waiters_;
};

/// One-shot completion event carrying a completion time. A completer may set
/// the event *in the future* (set_at), which is how asynchronous operations
/// (message delivery, device completion, generalized requests) are modeled:
/// the completer's own clock does not advance, but any waiter's clock is
/// advanced to the completion time.
class SimEvent {
 public:
  explicit SimEvent(Engine& engine) : engine_(engine) {}
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  /// Completes the event now.
  void set();

  /// Completes the event at time `at` (>= the setter's current time).
  void set_at(Time at);

  /// Blocks until the event completes; advances the waiter to the
  /// completion time.
  void wait();

  bool is_set() const { return set_; }
  /// Completion time; only meaningful once is_set().
  Time completion_time() const { return at_; }
  Engine& engine() const { return engine_; }

 private:
  Engine& engine_;
  bool set_ = false;
  Time at_ = 0;
  std::vector<ProcessId> waiters_;
};

/// Cyclic barrier for a fixed participant count. All participants leave at
/// the maximum arrival time — precisely the "bottlenecked by the slowest
/// process" semantics of MPI synchronizing collectives.
class SimBarrier {
 public:
  SimBarrier(Engine& engine, std::size_t participants)
      : engine_(engine), participants_(participants) {}
  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;

  /// Blocks until `participants` processes have arrived; returns with the
  /// caller's clock at the max arrival time. Reusable (cyclic).
  void arrive_and_wait();

  std::size_t participants() const { return participants_; }

 private:
  Engine& engine_;
  std::size_t participants_;
  std::vector<ProcessId> arrived_;
  Time max_arrival_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace e10::sim
