// Allocation-free scheduler ready queue: a binary min-heap keyed on
// (virtual time, admission sequence).
//
// The seed engine kept runnable processes in a
// std::map<std::pair<Time, uint64_t>, Process*>, paying one red-black-tree
// node allocation per scheduling event — the single hottest allocation site
// in the whole simulator (docs/performance.md). The heap stores entries
// inline in one contiguous vector: pushes and pops are pointer-free
// sift-up/sift-down over cache-line-friendly 24-byte entries, and the
// backing storage is reused for the lifetime of the engine.
//
// Ordering contract (the scheduler equivalence suite asserts it): pop()
// returns entries in exactly ascending (time, seq) order — identical to the
// seed map's begin()/erase iteration. Keys are unique because every
// admission gets a fresh sequence number, so the heap's internal layout
// freedom can never surface as a pop-order difference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"

namespace e10::sim {

template <typename T>
class ReadyQueue {
 public:
  struct Entry {
    Time time = 0;
    std::uint64_t seq = 0;
    T item{};

    friend bool operator<(const Entry& a, const Entry& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    }
  };

  void reserve(std::size_t n) { heap_.reserve(n); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Smallest (time, seq) entry; undefined when empty.
  const Entry& top() const { return heap_.front(); }

  void push(Time time, std::uint64_t seq, T item) {
    heap_.push_back(Entry{time, seq, std::move(item)});
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the smallest (time, seq) entry.
  Entry pop() {
    Entry out = std::move(heap_.front());
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = std::move(last);
      sift_down(0);
    }
    return out;
  }

  /// Drops every entry; keeps the backing storage for reuse.
  void clear() { heap_.clear(); }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[i] < heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (heap_[left] < heap_[smallest]) smallest = left;
      if (right < n && heap_[right] < heap_[smallest]) smallest = right;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
};

}  // namespace e10::sim
