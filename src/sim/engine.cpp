#include "sim/engine.h"

#include <cstring>
#include <sstream>

#include "common/log.h"
#include "common/units.h"
#include "sim/causal.h"
#include "sim/concurrency.h"

// ASan cannot see through makecontext/swapcontext on its own: a throw on a
// fiber stack (ProcessCancelled unwinding) or data handed between fiber
// stacks makes the runtime consult the wrong stack bounds and report false
// stack-buffer-overflow / stack-use-after-scope (google/sanitizers#189).
// The __sanitizer fiber hooks announce every stack switch; without ASan
// the wrappers below compile to nothing.
#if defined(__SANITIZE_ADDRESS__)
#define E10_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define E10_ASAN_FIBERS 1
#endif
#endif
#ifndef E10_ASAN_FIBERS
#define E10_ASAN_FIBERS 0
#endif
#if E10_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace e10::sim {

namespace {

#if E10_ASAN_FIBERS
/// Call directly before swapcontext: `*fake` saves this side's fake-stack
/// handle (nullptr `fake` = this fiber is exiting for good), bottom/size
/// describe the destination stack.
void fiber_switch_begin(void** fake, const void* bottom, std::size_t size) {
  __sanitizer_start_switch_fiber(fake, bottom, size);
}
/// Call directly after gaining control: `fake` is the handle saved when
/// this side last suspended (nullptr on first entry); the out-params
/// receive the bounds of the stack we came from.
void fiber_switch_end(void* fake, const void** from_bottom,
                      std::size_t* from_size) {
  __sanitizer_finish_switch_fiber(fake, from_bottom, from_size);
}
#else
void fiber_switch_begin(void**, const void*, std::size_t) {}
void fiber_switch_end(void*, const void**, std::size_t*) {}
#endif

/// The engine whose fiber is currently being started (trampoline target).
thread_local Engine* g_active_engine = nullptr;

/// Written at the low end of every fiber stack; checked when the fiber
/// finishes to catch stack overflows (fiber stacks have no guard page).
constexpr std::uint64_t kStackCanary = 0xE10CAFEBABE5EEDULL;

}  // namespace

void ProcessHandle::join() const {
  if (!valid()) throw std::logic_error("join on invalid ProcessHandle");
  Engine& eng = *engine_;
  Engine::Process& target = eng.proc(id_);
  const Time before = eng.now();
  if (target.state == Engine::Process::State::finished) {
    eng.advance_to(target.clock);
  } else {
    target.joiners.push_back(eng.current());
    eng.block("join");
  }
  // The join advanced the caller's clock: the target's finish gated us.
  if (CausalObserver* causal = eng.causal_observer();
      causal != nullptr && target.finish_token != 0 && eng.now() > before) {
    causal->ack(target.finish_token, eng.current(), eng.now());
  }
}

bool ProcessHandle::finished() const {
  if (!valid()) return false;
  return engine_->proc(id_).state == Engine::Process::State::finished;
}

Engine::Engine() {
  // Log lines emitted from inside simulated processes get a virtual-time +
  // process-name prefix. The hook is global and engine-agnostic: it reads
  // whichever engine is active on this thread at write time.
  log::set_context_hook(&Engine::log_context);
}

Engine::~Engine() {
  cancel_all();
  if (g_active_engine == this) g_active_engine = nullptr;
}

bool Engine::log_context(std::int64_t& now_ns, std::string& name) {
  const Engine* engine = g_active_engine;
  if (engine == nullptr || engine->current_ == nullptr) return false;
  now_ns = engine->sim_time_;
  name = engine->current_->name;
  return true;
}

Engine::Process& Engine::proc(ProcessId pid) const {
  if (pid >= processes_.size()) {
    throw std::logic_error("unknown ProcessId");
  }
  return *processes_[pid];
}

ProcessHandle Engine::spawn(std::string name, std::function<void()> body) {
  auto process = std::make_unique<Process>();
  Process& p = *process;
  p.name = std::move(name);
  p.id = processes_.size();
  p.clock = current_ != nullptr ? current_->clock : sim_time_;
  p.body = std::move(body);
  p.state = Process::State::ready;
  // Default-initialized (not zeroed) so pages are only touched when used.
  p.stack.reset(new char[kStackBytes]);
  std::memcpy(p.stack.get(), &kStackCanary, sizeof(kStackCanary));
  if (getcontext(&p.context) != 0) {
    throw std::runtime_error("getcontext failed");
  }
  p.context.uc_stack.ss_sp = p.stack.get();
  p.context.uc_stack.ss_size = kStackBytes;
  p.context.uc_link = &engine_context_;
  makecontext(&p.context, &Engine::trampoline, 0);
  processes_.push_back(std::move(process));
  ++live_;
  insert_ready(p);
  return ProcessHandle(this, p.id);
}

void Engine::insert_ready(Process& p) {
  ready_.emplace(std::make_pair(p.clock, next_seq_++), &p);
}

void Engine::resume(Process& p) {
  current_ = &p;
  sim_time_ = p.clock;
  p.state = Process::State::running;
  ++switches_;
  g_active_engine = this;
  void* engine_fake_stack = nullptr;
  fiber_switch_begin(&engine_fake_stack, p.stack.get(), kStackBytes);
  swapcontext(&engine_context_, &p.context);
  fiber_switch_end(engine_fake_stack, nullptr, nullptr);
  current_ = nullptr;
}

void Engine::switch_to_engine() {
  Process* self = current_;
  void* fiber_fake_stack = nullptr;
  fiber_switch_begin(&fiber_fake_stack, asan_engine_stack_,
                     asan_engine_stack_size_);
  swapcontext(&self->context, &engine_context_);
  fiber_switch_end(fiber_fake_stack, nullptr, nullptr);
  // Resumed: the scheduler restored current_/sim_time_ for us.
  if (self->cancelled) throw ProcessCancelled{};
}

void Engine::trampoline() {
  Engine& eng = *g_active_engine;
  // First entry on this fiber's stack: no saved handle to restore; record
  // where we came from — the engine context's own stack.
  fiber_switch_end(nullptr, &eng.asan_engine_stack_,
                   &eng.asan_engine_stack_size_);
  Process& p = *eng.current_;
  try {
    if (p.cancelled) throw ProcessCancelled{};
    p.body();
  } catch (const ProcessCancelled&) {
    // Engine teardown: unwind silently.
  } catch (...) {
    p.error = std::current_exception();
  }
  eng.finish_current();
}

void Engine::finish_current() {
  Process& p = *current_;
  std::uint64_t canary = 0;
  std::memcpy(&canary, p.stack.get(), sizeof(canary));
  if (canary != kStackCanary) {
    // The fiber ran off its stack; the process is in an undefined state.
    std::abort();
  }
  p.state = Process::State::finished;
  if (!p.cancelled) {
    if (causal_observer_ != nullptr) {
      p.finish_token =
          causal_observer_->emit(EdgeKind::process, p.id, p.clock);
    }
    for (const ProcessId j : p.joiners) make_ready(j, p.clock);
    p.joiners.clear();
  }
  p.body = nullptr;  // release captured state eagerly
  // Final departure from this stack: a null save slot tells ASan to
  // release the fiber's fake stack instead of parking it.
  fiber_switch_begin(nullptr, asan_engine_stack_, asan_engine_stack_size_);
  swapcontext(&p.context, &engine_context_);
  // Never reached: finished fibers are not resumed.
  std::abort();
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  if (current_ != nullptr) {
    throw std::logic_error("Engine::run from inside a simulated process");
  }
  running_ = true;
  stopped_ = false;
  std::exception_ptr error;
  while (!ready_.empty()) {
    auto it = ready_.begin();
    // Crash point: nothing scheduled at or after the stop time runs. The
    // break (not a throw) leaves surviving state intact for a recovery pass.
    if (stop_at_.has_value() && it->first.first >= *stop_at_) {
      stopped_ = true;
      break;
    }
    Process* p = it->second;
    ready_.erase(it);
    resume(*p);
    if (p->state == Process::State::finished) {
      --live_;
      p->stack.reset();
      if (p->error != nullptr) {
        error = p->error;
        p->error = nullptr;
        break;
      }
    }
  }
  running_ = false;
  // One-shot in every outcome: fired, run ended first, or errored — a
  // follow-up run() (e.g. a post-crash recovery pass) proceeds normally.
  const std::optional<Time> stop = stop_at_;
  stop_at_.reset();
  if (error != nullptr) {
    cancel_all();
    std::rethrow_exception(error);
  }
  if (stopped_) {
    cancel_all();
    // cancel_all resumed each victim at its own clock (possibly scheduled
    // past the stop); the crash itself defines the world clock, so pin it
    // to the stop time for post-crash spawns.
    sim_time_ = *stop;
    return;
  }
  if (live_ > 0) {
    std::ostringstream os;
    os << "deadlock: " << live_ << " live process(es), none runnable:";
    for (const auto& p : processes_) {
      if (p->state == Process::State::blocked) {
        os << " [" << p->name << " blocked on "
           << (p->block_reason != nullptr ? p->block_reason : "?") << " at t="
           << format_time(p->clock);
        if (concurrency_observer_ != nullptr) {
          const std::string locks =
              concurrency_observer_->describe_process(p->id);
          if (!locks.empty()) os << " " << locks;
        }
        os << "]";
      }
    }
    cancel_all();
    throw DeadlockError(os.str());
  }
}

void Engine::delay(Time d) {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::delay outside process context");
  }
  if (d < 0) throw std::logic_error("Engine::delay with negative duration");
  Process& p = *current_;
  p.clock += d;
  // Fast path: nobody else is due strictly before our new time, so keep
  // running without a scheduler round trip. Ties still yield (FIFO). An
  // armed crash point due at or before the new clock forces the slow path
  // so the scheduler can stop the run instead of sailing past it.
  if ((ready_.empty() || ready_.begin()->first.first > p.clock) &&
      !(stop_at_.has_value() && p.clock >= *stop_at_)) {
    sim_time_ = p.clock;
    return;
  }
  p.state = Process::State::ready;
  insert_ready(p);
  switch_to_engine();
}

void Engine::advance_to(Time t) {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::advance_to outside process context");
  }
  if (t <= current_->clock) return;
  delay(t - current_->clock);
}

void Engine::yield() { delay(0); }

ProcessId Engine::current() const {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::current outside process context");
  }
  return current_->id;
}

const std::string& Engine::name_of(ProcessId pid) const {
  return proc(pid).name;
}

void Engine::block(const char* why) {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::block outside process context");
  }
  Process& p = *current_;
  p.state = Process::State::blocked;
  p.block_reason = why;
  switch_to_engine();
}

bool Engine::is_blocked(ProcessId pid) const {
  return proc(pid).state == Process::State::blocked;
}

void Engine::make_ready(ProcessId pid, Time not_before) {
  Process& target = proc(pid);
  if (target.state != Process::State::blocked) {
    throw std::logic_error("make_ready on process '" + target.name +
                           "' that is not blocked");
  }
  target.clock = std::max(target.clock, not_before);
  target.state = Process::State::ready;
  target.block_reason = nullptr;
  insert_ready(target);
}

void Engine::cancel_all() {
  if (current_ != nullptr) {
    throw std::logic_error("Engine::cancel_all from a simulated process");
  }
  for (const auto& process : processes_) {
    Process& p = *process;
    if (p.state == Process::State::finished) continue;
    p.cancelled = true;
    resume(p);  // unwinds via ProcessCancelled, returns finished
    p.stack.reset();
  }
  ready_.clear();
  live_ = 0;
}

}  // namespace e10::sim
