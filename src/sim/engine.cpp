#include "sim/engine.h"

#include <cstring>
#include <sstream>

#include "common/log.h"
#include "common/units.h"
#include "sim/causal.h"
#include "sim/concurrency.h"

// ASan cannot see through fiber switches on its own: a throw on a fiber
// stack (ProcessCancelled unwinding) or data handed between fiber stacks
// makes the runtime consult the wrong stack bounds and report false
// stack-buffer-overflow / stack-use-after-scope (google/sanitizers#189).
// The __sanitizer fiber hooks announce every stack switch; without ASan
// the wrappers below compile to nothing. Pooled stacks additionally need
// an explicit unpoison on reuse: the previous occupant's frame redzones
// stay poisoned after it exits, and the next fiber lays out different
// frames over the same bytes.
#if defined(__SANITIZE_ADDRESS__)
#define E10_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define E10_ASAN_FIBERS 1
#endif
#endif
#ifndef E10_ASAN_FIBERS
#define E10_ASAN_FIBERS 0
#endif
#if E10_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

#if E10_FAST_FIBERS

// Minimal sysv x86-64 context switch. swapcontext() is a poor fit for
// cooperative fibers: every call makes a rt_sigprocmask syscall to
// save/restore the signal mask and copies the full mcontext — at half a
// million switches per sweep point that is pure overhead. The simulator
// never touches signal state from simulated code, so a switch only has to
// preserve what the sysv ABI says survives a call: rbp, rbx, r12-r15, the
// SSE control/status word, and the x87 control word. Saved frame, from the
// stored stack pointer upward:
//
//   sp +  0 : mxcsr (4 bytes) | x87 cw (2 bytes) | pad (2 bytes)
//   sp +  8 : r15
//   sp + 16 : r14
//   sp + 24 : r13
//   sp + 32 : r12
//   sp + 40 : rbx
//   sp + 48 : rbp
//   sp + 56 : return address
//
// e10_ctx_swap(save_sp, load_sp) pushes that frame on the current stack,
// publishes the resulting rsp through *save_sp, then adopts load_sp and
// unwinds the same layout — so "returning" happens on the other stack.
// Engine::prepare_fiber() forges the identical frame at the top of a fresh
// fiber stack with the return-address slot aimed at Engine::trampoline,
// which is how a first resume "returns" into the fiber body.
extern "C" void e10_ctx_swap(void** save_sp, void* load_sp);
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl e10_ctx_swap\n"
    ".hidden e10_ctx_swap\n"
    ".type e10_ctx_swap,@function\n"
    "e10_ctx_swap:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq $8, %rsp\n"
    "  stmxcsr (%rsp)\n"
    "  fnstcw 4(%rsp)\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  ldmxcsr (%rsp)\n"
    "  fldcw 4(%rsp)\n"
    "  addq $8, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size e10_ctx_swap, .-e10_ctx_swap\n");

#endif  // E10_FAST_FIBERS

namespace e10::sim {

namespace {

#if E10_ASAN_FIBERS
/// Call directly before the context switch: `*fake` saves this side's
/// fake-stack handle (nullptr `fake` = this fiber is exiting for good),
/// bottom/size describe the destination stack.
void fiber_switch_begin(void** fake, const void* bottom, std::size_t size) {
  __sanitizer_start_switch_fiber(fake, bottom, size);
}
/// Call directly after gaining control: `fake` is the handle saved when
/// this side last suspended (nullptr on first entry); the out-params
/// receive the bounds of the stack we came from.
void fiber_switch_end(void* fake, const void** from_bottom,
                      std::size_t* from_size) {
  __sanitizer_finish_switch_fiber(fake, from_bottom, from_size);
}
/// Clears poison left behind by a previous occupant of a recycled stack.
void unpoison_stack(const void* bottom, std::size_t size) {
  __asan_unpoison_memory_region(bottom, size);
}
#else
void fiber_switch_begin(void**, const void*, std::size_t) {}
void fiber_switch_end(void*, const void**, std::size_t*) {}
void unpoison_stack(const void*, std::size_t) {}
#endif

/// The engine whose fiber is currently being started (trampoline target).
thread_local Engine* g_active_engine = nullptr;

/// Written at the low end of every fiber stack; checked when the fiber
/// finishes to catch stack overflows (fiber stacks have no guard page).
constexpr std::uint64_t kStackCanary = 0xE10CAFEBABE5EEDULL;

}  // namespace

void ProcessHandle::join() const {
  if (!valid()) throw std::logic_error("join on invalid ProcessHandle");
  Engine& eng = *engine_;
  Engine::Process& target = eng.proc(id_);
  const Time before = eng.now();
  if (target.state == Engine::Process::State::finished) {
    eng.advance_to(target.clock);
  } else {
    target.joiners.push_back(eng.current());
    eng.block("join");
  }
  // The join advanced the caller's clock: the target's finish gated us.
  if (CausalObserver* causal = eng.causal_observer();
      causal != nullptr && target.finish_token != 0 && eng.now() > before) {
    causal->ack(target.finish_token, eng.current(), eng.now());
  }
}

bool ProcessHandle::finished() const {
  if (!valid()) return false;
  return engine_->proc(id_).state == Engine::Process::State::finished;
}

Engine::Engine() {
  // Log lines emitted from inside simulated processes get a virtual-time +
  // process-name prefix. The hook is global and engine-agnostic: it reads
  // whichever engine is active on this thread at write time.
  log::set_context_hook(&Engine::log_context);
}

Engine::~Engine() {
  cancel_all();
  if (g_active_engine == this) g_active_engine = nullptr;
}

bool Engine::log_context(std::int64_t& now_ns, std::string& name) {
  const Engine* engine = g_active_engine;
  if (engine == nullptr || engine->current_ == nullptr) return false;
  now_ns = engine->sim_time_;
  name = engine->current_->name;
  return true;
}

Engine::Process& Engine::proc(ProcessId pid) const {
  if (pid >= process_count_) {
    throw std::logic_error("unknown ProcessId");
  }
  return chunks_[pid >> kChunkShift][pid & kChunkMask];
}

Engine::Process& Engine::allocate_process() {
  const std::size_t slot = process_count_;
  if ((slot >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Process[]>(kChunkSize));
  }
  ++process_count_;
  return chunks_[slot >> kChunkShift][slot & kChunkMask];
}

std::unique_ptr<char[]> Engine::acquire_stack() {
  if (!stack_pool_.empty()) {
    std::unique_ptr<char[]> stack = std::move(stack_pool_.back());
    stack_pool_.pop_back();
    unpoison_stack(stack.get(), kStackBytes);
    ++stack_reuses_;
    return stack;
  }
  // Default-initialized (not zeroed) so pages are only touched when used.
  return std::unique_ptr<char[]>(new char[kStackBytes]);
}

void Engine::release_stack(std::unique_ptr<char[]> stack) {
  if (stack != nullptr) stack_pool_.push_back(std::move(stack));
}

void Engine::reserve_processes(std::size_t n) {
  chunks_.reserve((n + kChunkSize - 1) / kChunkSize);
  ready_.reserve(n);
  stack_pool_.reserve(n);
}

void Engine::prepare_fiber(Process& p) {
  std::memcpy(p.stack.get(), &kStackCanary, sizeof(kStackCanary));
#if E10_FAST_FIBERS
  // Forge the e10_ctx_swap frame (layout documented at the asm above) at
  // the 16-byte-aligned top of the stack, so the first switch into this
  // fiber "returns" into trampoline() with the stack aligned exactly as
  // the psABI guarantees at function entry (rsp % 16 == 8).
  auto top = reinterpret_cast<std::uintptr_t>(p.stack.get()) + kStackBytes;
  top &= ~std::uintptr_t{15};
  char* frame = reinterpret_cast<char*>(top - 72);
  std::memset(frame, 0, 72);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
  __asm__ volatile("fnstcw %0" : "=m"(fcw));
  std::memcpy(frame + 0, &mxcsr, sizeof(mxcsr));
  std::memcpy(frame + 4, &fcw, sizeof(fcw));
  void (*entry)() = &Engine::trampoline;
  auto entry_addr = reinterpret_cast<std::uintptr_t>(entry);
  std::memcpy(frame + 56, &entry_addr, sizeof(entry_addr));
  p.stack_pointer = frame;
#else
  if (getcontext(&p.context) != 0) {
    throw std::runtime_error("getcontext failed");
  }
  p.context.uc_stack.ss_sp = p.stack.get();
  p.context.uc_stack.ss_size = kStackBytes;
  p.context.uc_link = &engine_context_;
  makecontext(&p.context, &Engine::trampoline, 0);
#endif
}

ProcessHandle Engine::spawn(std::string&& name, SmallFn body) {
  Process& p = allocate_process();
  p.name = std::move(name);
  p.id = process_count_ - 1;
  p.clock = current_ != nullptr ? current_->clock : sim_time_;
  p.body = std::move(body);
  p.state = Process::State::ready;
  p.stack = acquire_stack();
  prepare_fiber(p);
  ++live_;
  insert_ready(p);
  return ProcessHandle(this, p.id);
}

ProcessHandle Engine::spawn(std::string_view name, SmallFn body) {
  return spawn(std::string(name), std::move(body));
}

void Engine::insert_ready(Process& p) {
  ready_.push(p.clock, next_seq_++, &p);
  if (ready_.size() > max_ready_depth_) max_ready_depth_ = ready_.size();
}

void Engine::resume(Process& p) {
  current_ = &p;
  sim_time_ = p.clock;
  p.state = Process::State::running;
  ++switches_;
  g_active_engine = this;
  void* engine_fake_stack = nullptr;
  fiber_switch_begin(&engine_fake_stack, p.stack.get(), kStackBytes);
#if E10_FAST_FIBERS
  e10_ctx_swap(&engine_stack_pointer_, p.stack_pointer);
#else
  swapcontext(&engine_context_, &p.context);
#endif
  fiber_switch_end(engine_fake_stack, nullptr, nullptr);
  current_ = nullptr;
}

void Engine::switch_to_engine() {
  Process* self = current_;
  void* fiber_fake_stack = nullptr;
  fiber_switch_begin(&fiber_fake_stack, asan_engine_stack_,
                     asan_engine_stack_size_);
#if E10_FAST_FIBERS
  e10_ctx_swap(&self->stack_pointer, engine_stack_pointer_);
#else
  swapcontext(&self->context, &engine_context_);
#endif
  fiber_switch_end(fiber_fake_stack, nullptr, nullptr);
  // Resumed: the scheduler restored current_/sim_time_ for us.
  if (self->cancelled) throw ProcessCancelled{};
}

void Engine::trampoline() {
  Engine& eng = *g_active_engine;
  // First entry on this fiber's stack: no saved handle to restore; record
  // where we came from — the engine context's own stack.
  fiber_switch_end(nullptr, &eng.asan_engine_stack_,
                   &eng.asan_engine_stack_size_);
  Process& p = *eng.current_;
  try {
    if (p.cancelled) throw ProcessCancelled{};
    p.body();
  } catch (const ProcessCancelled&) {
    // Engine teardown: unwind silently.
  } catch (...) {
    p.error = std::current_exception();
  }
  eng.finish_current();
}

void Engine::finish_current() {
  Process& p = *current_;
  std::uint64_t canary = 0;
  std::memcpy(&canary, p.stack.get(), sizeof(canary));
  if (canary != kStackCanary) {
    // The fiber ran off its stack; the process is in an undefined state.
    std::abort();
  }
  p.state = Process::State::finished;
  if (!p.cancelled) {
    if (causal_observer_ != nullptr) {
      p.finish_token =
          causal_observer_->emit(EdgeKind::process, p.id, p.clock);
    }
    for (const ProcessId j : p.joiners) make_ready(j, p.clock);
    p.joiners.clear();
  }
  p.body = nullptr;  // release captured state eagerly
  // Final departure from this stack: a null save slot tells ASan to
  // release the fiber's fake stack instead of parking it.
  fiber_switch_begin(nullptr, asan_engine_stack_, asan_engine_stack_size_);
#if E10_FAST_FIBERS
  void* discard = nullptr;
  e10_ctx_swap(&discard, engine_stack_pointer_);
#else
  swapcontext(&p.context, &engine_context_);
#endif
  // Never reached: finished fibers are not resumed.
  std::abort();
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run is not reentrant");
  if (current_ != nullptr) {
    throw std::logic_error("Engine::run from inside a simulated process");
  }
  running_ = true;
  stopped_ = false;
  std::exception_ptr error;
  while (!ready_.empty()) {
    // Crash point: nothing scheduled at or after the stop time runs. The
    // break (not a throw) leaves surviving state intact for a recovery pass.
    if (stop_at_.has_value() && ready_.top().time >= *stop_at_) {
      stopped_ = true;
      break;
    }
    Process* p = ready_.pop().item;
    ++events_;
    resume(*p);
    if (p->state == Process::State::finished) {
      --live_;
      release_stack(std::move(p->stack));
      if (p->error != nullptr) {
        error = p->error;
        p->error = nullptr;
        break;
      }
    }
  }
  running_ = false;
  // One-shot in every outcome: fired, run ended first, or errored — a
  // follow-up run() (e.g. a post-crash recovery pass) proceeds normally.
  const std::optional<Time> stop = stop_at_;
  stop_at_.reset();
  if (error != nullptr) {
    cancel_all();
    std::rethrow_exception(error);
  }
  if (stopped_) {
    cancel_all();
    // cancel_all resumed each victim at its own clock (possibly scheduled
    // past the stop); the crash itself defines the world clock, so pin it
    // to the stop time for post-crash spawns.
    sim_time_ = *stop;
    return;
  }
  if (live_ > 0) {
    std::ostringstream os;
    os << "deadlock: " << live_ << " live process(es), none runnable:";
    for (ProcessId pid = 0; pid < process_count_; ++pid) {
      const Process& p = proc(pid);
      if (p.state == Process::State::blocked) {
        os << " [" << p.name << " blocked on "
           << (p.block_reason != nullptr ? p.block_reason : "?") << " at t="
           << format_time(p.clock);
        if (concurrency_observer_ != nullptr) {
          const std::string locks =
              concurrency_observer_->describe_process(p.id);
          if (!locks.empty()) os << " " << locks;
        }
        os << "]";
      }
    }
    cancel_all();
    throw DeadlockError(os.str());
  }
}

void Engine::delay(Time d) {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::delay outside process context");
  }
  if (d < 0) throw std::logic_error("Engine::delay with negative duration");
  Process& p = *current_;
  p.clock += d;
  // Fast path: nobody else is due strictly before our new time, so keep
  // running without a scheduler round trip. Ties still yield (FIFO). An
  // armed crash point due at or before the new clock forces the slow path
  // so the scheduler can stop the run instead of sailing past it.
  if ((ready_.empty() || ready_.top().time > p.clock) &&
      !(stop_at_.has_value() && p.clock >= *stop_at_)) {
    sim_time_ = p.clock;
    return;
  }
  p.state = Process::State::ready;
  insert_ready(p);
  switch_to_engine();
}

void Engine::advance_to(Time t) {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::advance_to outside process context");
  }
  if (t <= current_->clock) return;
  delay(t - current_->clock);
}

void Engine::yield() { delay(0); }

ProcessId Engine::current() const {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::current outside process context");
  }
  return current_->id;
}

const std::string& Engine::name_of(ProcessId pid) const {
  return proc(pid).name;
}

void Engine::block(const char* why) {
  if (current_ == nullptr) {
    throw std::logic_error("Engine::block outside process context");
  }
  Process& p = *current_;
  p.state = Process::State::blocked;
  p.block_reason = why;
  switch_to_engine();
}

bool Engine::is_blocked(ProcessId pid) const {
  return proc(pid).state == Process::State::blocked;
}

void Engine::make_ready(ProcessId pid, Time not_before) {
  Process& target = proc(pid);
  if (target.state != Process::State::blocked) {
    throw std::logic_error("make_ready on process '" + target.name +
                           "' that is not blocked");
  }
  target.clock = std::max(target.clock, not_before);
  target.state = Process::State::ready;
  target.block_reason = nullptr;
  insert_ready(target);
}

void Engine::cancel_all() {
  if (current_ != nullptr) {
    throw std::logic_error("Engine::cancel_all from a simulated process");
  }
  for (ProcessId pid = 0; pid < process_count_; ++pid) {
    Process& p = proc(pid);
    if (p.state == Process::State::finished) continue;
    p.cancelled = true;
    resume(p);  // unwinds via ProcessCancelled, returns finished
    release_stack(std::move(p.stack));
  }
  ready_.clear();
  live_ = 0;
}

}  // namespace e10::sim
