// Timestamped message queue between simulated processes.
//
// send() deposits a message that becomes *available* at a given virtual
// time (e.g. network arrival time) without blocking the sender — the eager
// message protocol. recv() blocks until a message is available and advances
// the receiver's clock to max(now, available_at).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/units.h"
#include "sim/engine.h"

namespace e10::sim {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposits a message available at time `available_at` (defaults to the
  /// sender's current time). Never blocks.
  void send(T message, std::optional<Time> available_at = std::nullopt) {
    queue_.push_back(Entry{std::move(message),
                           available_at.value_or(engine_.now())});
    if (!waiters_.empty()) {
      const ProcessId next = waiters_.front();
      waiters_.pop_front();
      engine_.make_ready(next, queue_.back().available_at);
    }
  }

  /// Blocks until a message is available; returns it in FIFO deposit order.
  T recv() {
    while (queue_.empty()) {
      waiters_.push_back(engine_.current());
      engine_.block("Mailbox::recv");
    }
    Entry entry = std::move(queue_.front());
    queue_.pop_front();
    engine_.advance_to(entry.available_at);
    return std::move(entry.message);
  }

  /// Non-blocking receive: a message only if one has already been deposited
  /// (the caller's clock still advances to its availability time).
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    Entry entry = std::move(queue_.front());
    queue_.pop_front();
    engine_.advance_to(entry.available_at);
    return std::move(entry.message);
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  struct Entry {
    T message;
    Time available_at;
  };
  Engine& engine_;
  std::deque<Entry> queue_;
  std::deque<ProcessId> waiters_;
};

}  // namespace e10::sim
