// The paper's three I/O benchmarks as library workloads (§IV):
//
//   coll_perf — MPICH's collective I/O benchmark: every process writes one
//     contiguous memory block of a 3-D block-distributed array, producing a
//     strided file pattern (one subarray write_all per file).
//   Flash-IO — the I/O kernel of the FLASH AMR hydrodynamics code: a
//     HDF5-like checkpoint of 24 variables; each variable is a dataset to
//     which every process contributes its blocks (one write_all per
//     variable, 24 per file), plus a small metadata header.
//   IOR — segmented sequential writes: each process writes one block per
//     segment at segment * P * B + rank * B.
//
// Scale substitution (documented in DESIGN.md): coll_perf's 3-D
// decomposition is chosen so each rank's 64 MiB block flattens to ~64
// strided pieces of 1 MiB instead of the tens of thousands of tiny rows a
// 256^3-element block would produce — same interleaved access structure at
// a piece granularity the DES can execute.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "mpi/comm.h"
#include "mpiio/file.h"

namespace e10::workloads {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Bytes this rank contributes to each file.
  virtual Offset bytes_per_rank(const mpi::Comm& comm) const = 0;

  /// Performs all collective writes for one (already open) file.
  /// `file_index` seeds the synthetic payload so files differ.
  virtual Status write_file(mpiio::File& file, const mpi::Comm& comm,
                            int file_index) const = 0;
};

/// coll_perf: 3-D block-distributed array, one subarray write_all.
class CollPerfWorkload final : public Workload {
 public:
  struct Params {
    /// Process grid (product must equal comm size).
    std::array<Offset, 3> grid = {8, 8, 8};
    /// Per-process sub-block in elements; the last dimension is contiguous.
    std::array<Offset, 3> block = {4, 16, 131072};
    Offset elem_bytes = 8;  // doubles
  };

  explicit CollPerfWorkload(const Params& params) : params_(params) {}

  std::string name() const override { return "coll_perf"; }
  Offset bytes_per_rank(const mpi::Comm& comm) const override;
  Status write_file(mpiio::File& file, const mpi::Comm& comm,
                    int file_index) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// coll_perf configured for the paper: 64 MiB per process.
CollPerfWorkload::Params collperf_paper_params(int ranks);

/// Flash-IO checkpoint: 24 variable datasets + metadata header.
class FlashIoWorkload final : public Workload {
 public:
  struct Params {
    int blocks_per_proc = 80;
    int variables = 24;
    /// Bytes of one (block, variable) chunk: 16^3 zones x 8 B / 24 vars
    /// rounded to the paper's 768 KiB per block across 24 variables.
    Offset chunk_bytes = 32 * units::KiB;
    /// HDF5-ish metadata header written collectively (rank 0 contributes).
    Offset header_bytes = 1 * units::MiB;
  };

  FlashIoWorkload() : params_(Params{}) {}
  explicit FlashIoWorkload(const Params& params) : params_(params) {}

  std::string name() const override { return "flash_io"; }
  Offset bytes_per_rank(const mpi::Comm& comm) const override;
  Status write_file(mpiio::File& file, const mpi::Comm& comm,
                    int file_index) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// IOR: `segments` x one `block_bytes` block per process per segment.
class IorWorkload final : public Workload {
 public:
  struct Params {
    Offset block_bytes = 8 * units::MiB;
    int segments = 8;
  };

  IorWorkload() : params_(Params{}) {}
  explicit IorWorkload(const Params& params) : params_(params) {}

  std::string name() const override { return "ior"; }
  Offset bytes_per_rank(const mpi::Comm& comm) const override;
  Status write_file(mpiio::File& file, const mpi::Comm& comm,
                    int file_index) const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace e10::workloads
