#include "workloads/workflow.h"

#include <algorithm>
#include <stdexcept>

#include "adio/adio_file.h"
#include "mpiio/file.h"
#include "prof/profiler.h"

namespace e10::workloads {

WorkflowResult run_workflow(Platform& platform, const Workload& workload,
                            const WorkflowParams& params) {
  const int nranks = platform.ranks();
  const int nfiles = params.num_files;
  if (nfiles <= 0) throw std::logic_error("run_workflow: num_files <= 0");

  // Per-rank, per-file measurements, reduced after the run.
  std::vector<std::vector<Time>> write_times(
      static_cast<std::size_t>(nranks),
      std::vector<Time>(static_cast<std::size_t>(nfiles), 0));
  std::vector<std::vector<Time>> residuals(
      static_cast<std::size_t>(nranks),
      std::vector<Time>(static_cast<std::size_t>(nfiles), 0));
  std::vector<Offset> bytes_per_rank(static_cast<std::size_t>(nranks), 0);

  platform.launch([&](mpi::Comm comm) {
    sim::Engine& engine = comm.engine();
    const std::size_t me = static_cast<std::size_t>(comm.rank());
    bytes_per_rank[me] = workload.bytes_per_rank(comm);
    obs::Tracer* tracer = platform.tracer.enabled() ? &platform.tracer
                                                    : nullptr;
    const int track =
        tracer != nullptr ? tracer->rank_track(comm.rank()) : 0;

    mpiio::File previous;  // deferred close target
    int previous_index = -1;

    auto really_close = [&](mpiio::File file, int index) {
      const Time t0 = engine.now();
      obs::Span span(tracer, track, "close");
      span.arg("file", static_cast<std::int64_t>(index));
      const Status closed = file.close();
      if (!closed.is_ok()) {
        throw std::runtime_error("workflow close failed: " +
                                 closed.to_string());
      }
      const Time elapsed = engine.now() - t0;
      residuals[me][static_cast<std::size_t>(index)] = elapsed;
      platform.profiler.record(comm.rank(), prof::Phase::not_hidden_sync,
                               elapsed);
    };

    for (int k = 0; k < nfiles; ++k) {
      // Fig. 3: file k-1 is closed just before file k is opened.
      if (previous.valid()) {
        really_close(std::move(previous), previous_index);
        previous = mpiio::File();
      }
      const std::string path =
          params.base_path + "_" + std::to_string(k);
      auto file = mpiio::File::open(
          platform.ctx, comm, path,
          adio::amode::create | adio::amode::rdwr, params.hints);
      if (!file.is_ok()) {
        throw std::runtime_error("workflow open failed: " +
                                 file.status().to_string());
      }

      const Time t0 = engine.now();
      {
        obs::Span span(tracer, track, "write_file");
        span.arg("file", static_cast<std::int64_t>(k));
        const Status written = workload.write_file(file.value(), comm, k);
        if (!written.is_ok()) {
          throw std::runtime_error("workflow write failed: " +
                                   written.to_string());
        }
      }
      write_times[me][static_cast<std::size_t>(k)] = engine.now() - t0;

      if (params.deferred_close) {
        previous = std::move(file).value();
        previous_index = k;
      } else {
        really_close(std::move(file).value(), k);
      }

      // Compute phase C(k+1); the background sync threads keep draining in
      // virtual time while this rank "computes". No compute phase follows
      // the last write (Fig. 3) — its synchronisation can never be hidden.
      if (k + 1 < nfiles) {
        obs::Span span(tracer, track, "compute");
        engine.delay(params.compute_delay);
      }
    }
    if (previous.valid()) {
      really_close(std::move(previous), previous_index);
    }
  });
  platform.run();

  // Reduce: per file, the slowest rank defines the phase time (collective
  // operations synchronize, so this is what the application perceives).
  WorkflowResult result;
  result.phases.resize(static_cast<std::size_t>(nfiles));
  Offset bytes_all_ranks = 0;
  for (const Offset b : bytes_per_rank) bytes_all_ranks += b;
  for (int k = 0; k < nfiles; ++k) {
    PhaseTiming& phase = result.phases[static_cast<std::size_t>(k)];
    phase.bytes = bytes_all_ranks;
    for (int r = 0; r < nranks; ++r) {
      phase.write_time =
          std::max(phase.write_time,
                   write_times[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(k)]);
      phase.residual_close =
          std::max(phase.residual_close,
                   residuals[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(k)]);
    }
  }

  for (int k = 0; k < nfiles; ++k) {
    const PhaseTiming& phase = result.phases[static_cast<std::size_t>(k)];
    const bool last = k == nfiles - 1;
    result.total_bytes += phase.bytes;
    result.io_time += phase.write_time;
    if (!last || params.include_last_phase) {
      result.io_time += phase.residual_close;
    }
  }
  result.bandwidth_gib = bandwidth_gib(result.total_bytes, result.io_time);
  return result;
}

}  // namespace e10::workloads
