// The application workflow driver (paper Fig. 3).
//
// Writes `num_files` files with a compute delay between them. With
// deferred_close (the modified workflow) the close of file k happens right
// before the open of file k+1, so the background cache synchronisation
// overlaps the compute phase; the driver measures the residual (not hidden)
// close time per file — the paper's not_hidden_sync term.
//
// Bandwidth accounting follows §IV exactly:
//   BW = sum S(k) / sum (Tc(k) + residual(k))        (Equation 2)
// where the last file's residual is included only when
// `include_last_phase` is set (IOR does, coll_perf/Flash-IO do not).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mpi/info.h"
#include "workloads/testbed.h"
#include "workloads/workload.h"

namespace e10::workloads {

struct WorkflowParams {
  std::string base_path = "/pfs/out";
  int num_files = 4;
  Time compute_delay = units::seconds(30);
  /// Modified workflow (Fig. 3): close file k at the open of file k+1.
  bool deferred_close = true;
  /// Count the last file's residual close in the bandwidth (IOR: yes).
  bool include_last_phase = false;
  mpi::Info hints;
};

struct PhaseTiming {
  Offset bytes = 0;        // S(k), all ranks
  Time write_time = 0;     // Tc(k), max over ranks
  Time residual_close = 0; // not-hidden sync paid for file k, max over ranks
};

struct WorkflowResult {
  std::vector<PhaseTiming> phases;
  Offset total_bytes = 0;  // across counted phases
  Time io_time = 0;        // Eq. 2 denominator
  double bandwidth_gib = 0.0;
};

/// Runs the workflow on an already-constructed platform. Launches the rank
/// processes and runs the engine to completion; returns the max-over-ranks
/// timing reduction.
WorkflowResult run_workflow(Platform& platform, const Workload& workload,
                            const WorkflowParams& params);

}  // namespace e10::workloads
