// The paper's analytic bandwidth model (§III-D, Equations 1 and 2).
//
//   bw(k) = S(k) / (Tc(k) + max(0, Ts(k) - C(k+1)))            (Eq. 1)
//   BW    = sum S(k) / sum (Tc(k) + max(0, Ts(k) - C(k+1)))    (Eq. 2)
//
// S: bytes written in phase k; Tc: collective write time (into the cache);
// Ts: background synchronisation time; C: the next compute phase. Maximum
// performance needs C >= Ts (sync fully hidden).
#pragma once

#include <vector>

#include "common/units.h"
#include "workloads/testbed.h"

namespace e10::workloads {

struct PhaseModel {
  Offset bytes = 0;   // S(k)
  Time write = 0;     // Tc(k)
  Time sync = 0;      // Ts(k)
  Time compute = 0;   // C(k+1)
};

/// max(0, Ts - C): the synchronisation time the application perceives.
Time not_hidden_sync(Time sync, Time compute);

/// Equation 1 (GiB/s).
double eq1_bandwidth(const PhaseModel& phase);

/// Equation 2 (GiB/s).
double eq2_bandwidth(const std::vector<PhaseModel>& phases);

/// Analytic estimate of Ts for one phase: every aggregator independently
/// drains bytes_per_aggregator through its SSD (read) and its share of the
/// PFS (write); the slower of the two pipelines dominates.
Time estimate_sync_time(Offset bytes_per_aggregator, std::size_t aggregators,
                        const TestbedParams& testbed);

}  // namespace e10::workloads
