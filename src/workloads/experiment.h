// Experiment harness for the paper's evaluation sweeps (§IV): one run =
// (testbed, aggregator count, collective buffer size, cache case) x a
// workload, producing the perceived bandwidth (Fig. 4/7/9 series) and the
// collective I/O time breakdown (Fig. 5/6/8/10 stacks).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/sync_thread.h"
#include "fault/fault_plan.h"
#include "obs/json.h"
#include "prof/profiler.h"
#include "sim/engine.h"
#include "workloads/workflow.h"

namespace e10::workloads {

/// The three measurement cases of Fig. 4/7/9.
enum class CacheCase {
  disabled,     // "BW Cache Disable": write directly to the PFS
  enabled,      // "BW Cache Enable": cache + async flush
  theoretical,  // "TBW Cache Enable": cache, never flushed
};

const char* to_string(CacheCase c);

struct ExperimentSpec {
  TestbedParams testbed = deep_er_testbed();
  int aggregators = 64;          // cb_nodes
  Offset cb_buffer_size = 4 * units::MiB;
  CacheCase cache_case = CacheCase::disabled;
  WorkflowParams workflow;       // hints field is filled by the harness
  /// Double-buffer the collective write's round loop (e10_pipeline_flag,
  /// docs/pipeline.md); false restores the classic synchronous ext2ph
  /// round loop for ablations.
  bool pipeline = true;
  /// Concurrent in-flight flush streams per sync thread (e10_sync_streams,
  /// docs/flush_scheduler.md); 1 restores the serial read-back→write drain.
  int sync_streams = 4;
  /// Coalesce adjacent queued sync requests into shared stripe-aligned
  /// flush dispatches (e10_flush_coalesce_flag); false flushes each request
  /// separately for ablations.
  bool flush_coalesce = true;
  /// Two-level collective-write exchange (e10_two_level_flag,
  /// docs/two_level.md): gather each node's contributions to the node
  /// leader over shared memory before a leaders-only inter-node exchange.
  /// false keeps the flat p-to-A shuffle.
  bool two_level = false;
  /// Fault scenario armed on the platform before the run (empty = none).
  fault::FaultPlan faults;
  /// Record a Chrome trace of this run (ExperimentResult::trace_json).
  bool trace = false;
  /// Record causal edges (obs::CausalRecorder) and run the critical-path
  /// analyzer after the run: end-to-end time attributed to phases and
  /// resources, reported in the run report's "critical_path" section and in
  /// ExperimentResult::critical_path. Implies trace collection internally
  /// (the analyzer walks the trace spans) but trace_json stays empty unless
  /// `trace` is also set.
  bool critical_path = false;
  /// Attach the concurrency checker (analysis::ConcurrencyChecker) for the
  /// run: lockset race detection + lock-order cycle analysis, reported in
  /// the run report's "analysis" section. Off by default — with the flag
  /// off every instrumentation hook is a single null-pointer branch.
  bool check_concurrency = false;
};

/// "<aggregators>_<cb size>" label, e.g. "64_4m", as the paper's x axes.
std::string combo_label(const ExperimentSpec& spec);

/// The MPI-IO hints the spec translates to.
mpi::Info experiment_hints(const ExperimentSpec& spec);

struct ExperimentResult {
  std::string combo;
  CacheCase cache_case = CacheCase::disabled;
  WorkflowResult workflow;
  double bandwidth_gib = 0.0;
  /// Max-over-ranks time per collective I/O phase (the stacked figures).
  std::map<prof::Phase, Time> breakdown;
  /// Sync-thread totals summed across all ranks and files (zero when the
  /// cache was disabled); queue_depth_high_water is the max, not the sum.
  cache::SyncStats sync;
  /// hidden_sync / total_sync in [0, 1]; 0 when nothing was synced.
  double flush_overlap_ratio = 0.0;
  /// Flush-scheduler derived figures (all zero when the cache was off):
  /// sync requests coalesced per batch (1.0 with coalescing off, the
  /// coalescing win above it), synced bytes over sync-thread busy time,
  /// and the fraction of stream write service time hidden behind other
  /// streams' work.
  double sync_coalesce_ratio = 0.0;
  double sync_flush_bandwidth_gib = 0.0;
  double sync_stream_overlap_ratio = 0.0;
  /// Engine self-metrics for the whole run (sim::EngineStats): event and
  /// switch counts, peak ready depth, spawn and stack-reuse totals. All
  /// deterministic — same spec, same counters — so CI gates on them and
  /// the bench layer derives host-side events/sec from them.
  sim::EngineStats engine_stats;
  /// Sampled FNV-1a fingerprint of the output files (also echoed in the
  /// report config as "content_checksum").
  std::string content_checksum;
  /// Machine-readable run report (config + phases + metrics + derived).
  obs::Json report;
  /// Chrome trace JSON; empty unless ExperimentSpec::trace was set.
  std::string trace_json;
  /// Concurrency-checker findings (ExperimentSpec::check_concurrency):
  /// lockset races and lock-order cycles. Both 0 on a clean run.
  std::size_t analysis_races = 0;
  std::size_t analysis_cycles = 0;
  std::size_t analysis_shared_accesses = 0;
  /// Critical-path analysis (ExperimentSpec::critical_path): the full
  /// report section (null when off), the dominant category name and the
  /// fraction of end-to-end time the walk attributed to named categories.
  obs::Json critical_path;
  std::string bottleneck;
  double attributed_fraction = 0.0;
  /// Human-readable attribution table (obs::critical_path_table).
  std::string critical_path_text;
  /// Spans still open when the run finished (trace or critical_path on).
  /// Non-zero means an error path leaked a Tracer::Span.
  std::size_t trace_open_spans = 0;
};

using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(const TestbedParams&)>;

/// Builds a fresh platform, runs the workflow, collects results.
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const WorkloadFactory& factory);

/// The paper's sweep: aggregators {8,16,32,64} x cb {4,16,64 MiB}.
std::vector<std::pair<int, Offset>> paper_sweep();

}  // namespace e10::workloads
