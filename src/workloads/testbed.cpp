#include "workloads/testbed.h"

namespace e10::workloads {

TestbedParams deep_er_testbed() {
  TestbedParams params;
  params.compute_nodes = 64;
  params.ranks_per_node = 8;
  params.pfs.data_servers = 4;
  params.pfs.target = storage::pfs_target_params();
  params.pfs.default_stripe_unit = 4 * units::MiB;  // paper: 4 MB stripes
  params.pfs.default_stripe_count = 4;              // paper: stripe count 4
  params.lfs.device = storage::local_ssd_params();
  params.lfs.capacity = 30 * units::GiB;  // the /scratch partition
  params.seed = 2016;
  return params;
}

TestbedParams small_testbed() {
  TestbedParams params;
  params.compute_nodes = 4;
  params.ranks_per_node = 2;
  params.pfs.data_servers = 2;
  params.pfs.target = storage::pfs_target_params();
  params.pfs.target.jitter_sigma = 0.0;  // deterministic service for asserts
  params.pfs.default_stripe_unit = 1 * units::MiB;
  params.pfs.default_stripe_count = 2;
  params.lfs.device = storage::local_ssd_params();
  params.lfs.device.jitter_sigma = 0.0;
  params.lfs.capacity = 256 * units::MiB;
  params.seed = 7;
  return params;
}

std::vector<std::size_t> Platform::server_nodes(const TestbedParams& params) {
  std::vector<std::size_t> nodes;
  nodes.reserve(params.pfs.data_servers);
  for (std::size_t i = 0; i < params.pfs.data_servers; ++i) {
    nodes.push_back(params.compute_nodes + i);
  }
  return nodes;
}

Platform::Platform(const TestbedParams& params)
    : fabric(params.compute_nodes + params.pfs.data_servers + 1,
             params.fabric),
      pfs(engine, fabric, server_nodes(params),
          /*metadata_node=*/params.compute_nodes + params.pfs.data_servers,
          params.pfs, params.seed),
      lfs(engine, params.compute_nodes, params.lfs, params.seed),
      locks(engine),
      profiler(engine,
               static_cast<int>(params.compute_nodes * params.ranks_per_node)),
      tracer(engine),
      faults(engine),
      ctx(engine, pfs, lfs, locks),
      world(engine, fabric,
            mpi::Topology(params.compute_nodes, params.ranks_per_node),
            params.mpi),
      params_(params) {
  ctx.profiler = &profiler;
  ctx.metrics = &metrics;
  ctx.tracer = &tracer;
  ctx.fault = &faults;
  pfs.set_metrics(&metrics);
  faults.set_observability(&metrics, &tracer);
  pfs.set_fault_injector(&faults);
  for (std::size_t node = 0; node < params.compute_nodes; ++node) {
    lfs.at(node).set_fault_injector(&faults);
  }
}

}  // namespace e10::workloads
