#include "workloads/experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "analysis/checker.h"
#include "obs/causal.h"
#include "obs/critical_path.h"
#include "obs/report.h"

namespace e10::workloads {

namespace {

/// Sampled FNV-1a fingerprint of the run's output files in the global
/// namespace. Synthetic data at GiB scale makes a full byte walk too slow,
/// so up to 64 Ki evenly-strided positions per file are hashed, plus each
/// file's extent end — enough to catch misplaced, reordered or lost round
/// writes when comparing pipelined against synchronous runs.
std::string content_fingerprint(const pfs::Pfs& pfs,
                                const WorkflowParams& workflow) {
  constexpr std::uint64_t kOffsetBasis = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = kOffsetBasis;
  const auto mix = [&hash](std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xff;
      hash *= kPrime;
    }
  };
  for (int k = 0; k < workflow.num_files; ++k) {
    const std::string path = workflow.base_path + "_" + std::to_string(k);
    const ByteStore* store = pfs.peek(path);
    if (store == nullptr) {
      mix(0);
      continue;
    }
    const Offset end = store->extent_end();
    mix(static_cast<std::uint64_t>(end));
    if (end <= 0) continue;
    const Offset stride = std::max<Offset>(1, end / 65536);
    for (Offset pos = 0; pos < end; pos += stride) {
      mix(static_cast<std::uint64_t>(store->byte_at(pos)));
    }
    mix(static_cast<std::uint64_t>(store->byte_at(end - 1)));
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

const char* to_string(CacheCase c) {
  switch (c) {
    case CacheCase::disabled: return "cache_disabled";
    case CacheCase::enabled: return "cache_enabled";
    case CacheCase::theoretical: return "tbw_cache_enabled";
  }
  return "?";
}

std::string combo_label(const ExperimentSpec& spec) {
  return std::to_string(spec.aggregators) + "_" +
         std::to_string(spec.cb_buffer_size / units::MiB) + "m";
}

mpi::Info experiment_hints(const ExperimentSpec& spec) {
  mpi::Info info;
  info.set("romio_cb_write", "enable");
  info.set("cb_nodes", std::to_string(spec.aggregators));
  info.set("cb_buffer_size", std::to_string(spec.cb_buffer_size));
  // The paper fixes the file striping (4 MiB x 4) and the sync buffer
  // (512 KiB); both are the testbed/hint defaults but set them explicitly
  // so the echo shows the experiment's intent.
  info.set("striping_unit",
           std::to_string(spec.testbed.pfs.default_stripe_unit));
  info.set("striping_factor",
           std::to_string(spec.testbed.pfs.default_stripe_count));
  info.set("ind_wr_buffer_size", std::to_string(512 * units::KiB));
  info.set("e10_pipeline_flag", spec.pipeline ? "enable" : "disable");
  info.set("e10_two_level_flag", spec.two_level ? "enable" : "disable");
  info.set("e10_sync_streams", std::to_string(spec.sync_streams));
  info.set("e10_flush_coalesce_flag",
           spec.flush_coalesce ? "enable" : "disable");
  switch (spec.cache_case) {
    case CacheCase::disabled:
      info.set("e10_cache", "disable");
      break;
    case CacheCase::enabled:
      info.set("e10_cache", "enable");
      info.set("e10_cache_path", "/scratch");
      info.set("e10_cache_flush_flag", "flush_immediate");
      info.set("e10_cache_discard_flag", "enable");
      break;
    case CacheCase::theoretical:
      info.set("e10_cache", "enable");
      info.set("e10_cache_path", "/scratch");
      info.set("e10_cache_flush_flag", "none");
      info.set("e10_cache_discard_flag", "enable");
      break;
  }
  return info;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const WorkloadFactory& factory) {
  Platform platform(spec.testbed);
  // Attach before anything runs so the checker sees every acquisition.
  std::unique_ptr<analysis::ConcurrencyChecker> checker;
  if (spec.check_concurrency) {
    checker = std::make_unique<analysis::ConcurrencyChecker>(platform.engine);
  }
  // The critical-path analyzer walks the trace spans, so it needs the
  // tracer on even when no trace file was requested.
  platform.tracer.set_enabled(spec.trace || spec.critical_path);
  std::unique_ptr<obs::CausalRecorder> causal;
  if (spec.critical_path) {
    causal = std::make_unique<obs::CausalRecorder>(platform.engine,
                                                   &platform.tracer);
  }
  if (!spec.faults.empty()) platform.faults.arm(spec.faults);
  const std::unique_ptr<Workload> workload = factory(spec.testbed);

  WorkflowParams workflow = spec.workflow;
  workflow.hints = experiment_hints(spec);
  // The modified workflow (deferred close) only matters when the cache is
  // in play; the baseline uses the classic close-then-compute workflow.
  workflow.deferred_close = spec.cache_case != CacheCase::disabled;

  ExperimentResult result;
  result.combo = combo_label(spec);
  result.cache_case = spec.cache_case;
  result.workflow = run_workflow(platform, *workload, workflow);
  result.bandwidth_gib = result.workflow.bandwidth_gib;
  result.engine_stats = platform.engine.stats();
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    const auto phase = static_cast<prof::Phase>(p);
    result.breakdown[phase] = platform.profiler.max_over_ranks(phase);
  }

  // Collect the observability outputs before the platform is destroyed.
  namespace names = obs::names;
  const obs::MetricsRegistry& metrics = platform.metrics;
  result.sync.requests = static_cast<std::uint64_t>(
      metrics.counter_value(names::kSyncRequests));
  result.sync.bytes_synced = metrics.counter_value(names::kSyncBytes);
  result.sync.staging_chunks = static_cast<std::uint64_t>(
      metrics.counter_value(names::kSyncChunks));
  result.sync.busy_time = metrics.counter_value(names::kSyncBusyNs);
  result.sync.retries = static_cast<std::uint64_t>(
      metrics.counter_value(names::kSyncRetries));
  result.sync.requeues = static_cast<std::uint64_t>(
      metrics.counter_value(names::kSyncRequeues));
  result.sync.abandoned = static_cast<std::uint64_t>(
      metrics.counter_value(names::kSyncAbandoned));
  result.sync.queue_depth_high_water = static_cast<std::uint64_t>(
      metrics.gauge_high_water(names::kSyncQueueDepth));
  result.flush_overlap_ratio =
      obs::flush_overlap_ratio(platform.metrics, platform.profiler);
  {
    // Flush-scheduler figures of merit (satellite of the paper's §III-A
    // drain): how many sync requests coalesced into each batch, the drain
    // bandwidth over sync-thread busy time, and how much stream write
    // service time other streams hid.
    const double members = static_cast<double>(
        metrics.counter_value(names::kSyncBatchMembers));
    const double batches = static_cast<double>(
        metrics.counter_value(names::kSyncBatches));
    result.sync_coalesce_ratio = batches > 0 ? members / batches : 0.0;
    const double busy_s = units::to_seconds(result.sync.busy_time);
    result.sync_flush_bandwidth_gib =
        busy_s > 0
            ? static_cast<double>(result.sync.bytes_synced) / units::GiB /
                  busy_s
            : 0.0;
    const double stream_write_ns = static_cast<double>(
        metrics.counter_value(names::kSyncStreamWriteNs));
    const double stream_hidden_ns = static_cast<double>(
        metrics.counter_value(names::kSyncStreamHiddenNs));
    result.sync_stream_overlap_ratio =
        stream_write_ns > 0 ? stream_hidden_ns / stream_write_ns : 0.0;
  }
  platform.pfs.export_device_metrics(platform.metrics);

  obs::RunReportInputs inputs;
  inputs.config.emplace_back("combo", result.combo);
  inputs.config.emplace_back("cache_case", to_string(spec.cache_case));
  inputs.config.emplace_back("pipeline", spec.pipeline ? "on" : "off");
  inputs.config.emplace_back("sync_streams",
                             std::to_string(spec.sync_streams));
  inputs.config.emplace_back("coalesce", spec.flush_coalesce ? "on" : "off");
  inputs.config.emplace_back("two_level", spec.two_level ? "on" : "off");
  // Output-content fingerprint: pipelined and synchronous runs of the same
  // spec must agree on it (CI asserts this).
  result.content_checksum = content_fingerprint(platform.pfs, workflow);
  inputs.config.emplace_back("content_checksum", result.content_checksum);
  inputs.config.emplace_back("ranks", std::to_string(platform.ranks()));
  inputs.config.emplace_back(
      "num_files", std::to_string(spec.workflow.num_files));
  inputs.config.emplace_back(
      "compute_delay_s",
      std::to_string(units::to_seconds(spec.workflow.compute_delay)));
  for (const std::string& key : workflow.hints.keys()) {
    inputs.config.emplace_back("hint." + key,
                               workflow.hints.get_or(key, ""));
  }
  inputs.profiler = &platform.profiler;
  inputs.metrics = &platform.metrics;
  inputs.derived["perceived_bandwidth_gib"] = result.bandwidth_gib;
  inputs.derived["flush_overlap_ratio"] = result.flush_overlap_ratio;
  // Engine self-metrics: deterministic scheduler counters (no wall clock),
  // so the CI perf smoke job can gate on them exactly.
  inputs.derived["engine.events"] =
      static_cast<double>(result.engine_stats.events);
  inputs.derived["engine.switches"] =
      static_cast<double>(result.engine_stats.switches);
  inputs.derived["engine.spawned"] =
      static_cast<double>(result.engine_stats.spawned);
  inputs.derived["engine.max_ready_depth"] =
      static_cast<double>(result.engine_stats.max_ready_depth);
  inputs.derived["engine.stack_reuses"] =
      static_cast<double>(result.engine_stats.stack_reuses);
  inputs.derived["total_bytes"] =
      static_cast<double>(result.workflow.total_bytes);
  inputs.derived["io_time_s"] = units::to_seconds(result.workflow.io_time);
  {
    // Write-pipeline occupancy: how much of the aggregator write service
    // time the round loop hid behind the next round's shuffle.
    const double write_ns = static_cast<double>(
        metrics.counter_value(names::kPipelineWriteNs));
    const double hidden_ns = static_cast<double>(
        metrics.counter_value(names::kPipelineHiddenNs));
    inputs.derived["write_round.overlap_ratio"] =
        write_ns > 0 ? hidden_ns / write_ns : 0.0;
    inputs.derived["write_round.stalls"] = static_cast<double>(
        metrics.counter_value(names::kPipelineStalls));
  }
  if (spec.two_level) {
    // Two-level exchange traffic split (docs/two_level.md): how much of the
    // shuffle moved over shared memory instead of the NICs.
    inputs.derived["two_level.rounds"] = static_cast<double>(
        metrics.counter_value(names::kTwoLevelRounds));
    inputs.derived["two_level.intra_bytes"] = static_cast<double>(
        metrics.counter_value(names::kTwoLevelIntraBytes));
    inputs.derived["two_level.inter_bytes"] = static_cast<double>(
        metrics.counter_value(names::kTwoLevelInterBytes));
  }
  inputs.derived["sync.coalesce_ratio"] = result.sync_coalesce_ratio;
  inputs.derived["sync.flush_bandwidth_gib"] =
      result.sync_flush_bandwidth_gib;
  inputs.derived["sync.streams.overlap_ratio"] =
      result.sync_stream_overlap_ratio;
  inputs.derived["sync.streams.stalls"] = static_cast<double>(
      metrics.counter_value(names::kSyncStreamStalls));
  if (!spec.faults.empty()) {
    // Fault-scenario summary: the plan and what it actually did. The full
    // per-op counters are already in the metrics snapshot (fault.*).
    inputs.config.emplace_back("fault_plan", spec.faults.summary());
    const fault::FaultInjector::Stats& fstats = platform.faults.stats();
    inputs.derived["fault_injected"] = static_cast<double>(fstats.injected);
    inputs.derived["fault_outage_rejections"] =
        static_cast<double>(fstats.outage_rejections);
    inputs.derived["fault_crashes"] = static_cast<double>(fstats.crashes);
    inputs.derived["sync_retries"] =
        static_cast<double>(result.sync.retries);
    inputs.derived["sync_abandoned"] =
        static_cast<double>(result.sync.abandoned);
  }
  if (checker != nullptr) {
    const analysis::AnalysisSummary analysis = checker->summary();
    result.analysis_races = analysis.races.size();
    result.analysis_cycles = analysis.cycles.size();
    result.analysis_shared_accesses = analysis.shared_accesses;
    inputs.derived["analysis_races"] =
        static_cast<double>(result.analysis_races);
    inputs.derived["analysis_lock_order_cycles"] =
        static_cast<double>(result.analysis_cycles);
    inputs.analysis = checker->to_json();
  }
  result.report = obs::run_report_json(inputs);

  if (causal != nullptr) {
    const obs::CriticalPathReport path = obs::analyze_critical_path(
        platform.tracer, *causal, &platform.profiler);
    result.critical_path =
        obs::critical_path_json(path, &platform.profiler);
    result.bottleneck = obs::path_category_name(path.bottleneck);
    result.attributed_fraction = path.attributed_fraction;
    result.critical_path_text = obs::critical_path_table(path);
    result.report.set("critical_path", result.critical_path);
  }
  if (spec.trace || spec.critical_path) {
    result.trace_open_spans = platform.tracer.open_spans();
  }
  if (spec.trace) result.trace_json = platform.tracer.to_json();
  return result;
}

std::vector<std::pair<int, Offset>> paper_sweep() {
  std::vector<std::pair<int, Offset>> sweep;
  for (const int aggregators : {8, 16, 32, 64}) {
    for (const Offset cb : {4 * units::MiB, 16 * units::MiB, 64 * units::MiB}) {
      sweep.emplace_back(aggregators, cb);
    }
  }
  return sweep;
}

}  // namespace e10::workloads
