#include "workloads/workload.h"

#include <stdexcept>

#include "mpi/datatype.h"

namespace e10::workloads {

namespace {

std::uint64_t payload_seed(const std::string& workload, int file_index,
                           int rank) {
  return Rng::derive(Rng::derive(0xE10, workload),
                     std::to_string(file_index) + ":" + std::to_string(rank));
}

}  // namespace

// ---------------------------------------------------------------------------
// coll_perf
// ---------------------------------------------------------------------------

CollPerfWorkload::Params collperf_paper_params(int ranks) {
  CollPerfWorkload::Params params;
  // 8x8x8 grid at 512 ranks; per-proc block 4x16x131072 doubles = 64 MiB.
  // For smaller test runs, shrink the grid while keeping 64 pieces/rank.
  if (ranks == 512) {
    params.grid = {8, 8, 8};
  } else if (ranks == 64) {
    params.grid = {4, 4, 4};
  } else if (ranks == 8) {
    params.grid = {2, 2, 2};
  } else {
    throw std::logic_error(
        "collperf_paper_params: supported rank counts are 8/64/512");
  }
  params.block = {4, 16, 131072};
  params.elem_bytes = 8;
  return params;
}

Offset CollPerfWorkload::bytes_per_rank(const mpi::Comm&) const {
  return params_.block[0] * params_.block[1] * params_.block[2] *
         params_.elem_bytes;
}

Status CollPerfWorkload::write_file(mpiio::File& file, const mpi::Comm& comm,
                                    int file_index) const {
  const auto& g = params_.grid;
  const auto& b = params_.block;
  if (g[0] * g[1] * g[2] != comm.size()) {
    return Status::error(Errc::invalid_argument,
                         "coll_perf: grid does not match comm size");
  }
  // Rank -> grid coordinates, x-major like coll_perf's MPI_Cart defaults.
  const Offset r = comm.rank();
  const Offset gx = r / (g[1] * g[2]);
  const Offset gy = (r / g[2]) % g[1];
  const Offset gz = r % g[2];

  const std::vector<Offset> sizes = {g[0] * b[0], g[1] * b[1], g[2] * b[2]};
  const std::vector<Offset> subsizes = {b[0], b[1], b[2]};
  const std::vector<Offset> starts = {gx * b[0], gy * b[1], gz * b[2]};
  const auto type =
      mpi::FlatType::subarray(sizes, subsizes, starts, params_.elem_bytes);

  if (const Status s = file.set_view(0, type); !s.is_ok()) return s;
  const DataView data = DataView::synthetic(
      payload_seed(name(), file_index, comm.rank()), 0,
      bytes_per_rank(comm));
  return file.write_all(data);
}

// ---------------------------------------------------------------------------
// Flash-IO
// ---------------------------------------------------------------------------

Offset FlashIoWorkload::bytes_per_rank(const mpi::Comm& comm) const {
  Offset bytes = static_cast<Offset>(params_.blocks_per_proc) *
                 params_.variables * params_.chunk_bytes;
  if (comm.rank() == 0) bytes += params_.header_bytes;
  return bytes;
}

Status FlashIoWorkload::write_file(mpiio::File& file, const mpi::Comm& comm,
                                   int file_index) const {
  const Offset p = comm.size();
  const Offset blocks = params_.blocks_per_proc;
  const Offset chunk = params_.chunk_bytes;
  const std::uint64_t seed = payload_seed(name(), file_index, comm.rank());

  // Metadata header: rank 0 contributes, everyone participates (HDF5 writes
  // its superblock/tree collectively through the same MPI-IO file).
  if (const Status s = file.set_view(0); !s.is_ok()) return s;
  {
    const DataView header =
        comm.rank() == 0
            ? DataView::synthetic(seed ^ 0xEAD5ULL, 0, params_.header_bytes)
            : DataView();
    if (const Status s = file.write_at_all(0, header); !s.is_ok()) return s;
  }

  // One dataset per variable: dataset v holds chunk (p, b) at
  // ((p * blocks) + b) * chunk. A rank's 80 chunks are contiguous within a
  // dataset (FLASH packs the block dimension first), so the interleaving is
  // across datasets; the paper forces collective buffering via hints.
  const Offset dataset_bytes = p * blocks * chunk;
  Offset payload_cursor = 0;
  for (int v = 0; v < params_.variables; ++v) {
    const Offset dataset_base = params_.header_bytes + v * dataset_bytes;
    const Offset my_offset = dataset_base + comm.rank() * blocks * chunk;
    const DataView data =
        DataView::synthetic(seed, payload_cursor, blocks * chunk);
    if (const Status s = file.write_at_all(my_offset, data); !s.is_ok()) {
      return s;
    }
    payload_cursor += blocks * chunk;
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// IOR
// ---------------------------------------------------------------------------

Offset IorWorkload::bytes_per_rank(const mpi::Comm&) const {
  return params_.block_bytes * params_.segments;
}

Status IorWorkload::write_file(mpiio::File& file, const mpi::Comm& comm,
                               int file_index) const {
  const Offset p = comm.size();
  const Offset block = params_.block_bytes;
  const std::uint64_t seed = payload_seed(name(), file_index, comm.rank());
  if (const Status s = file.set_view(0); !s.is_ok()) return s;
  for (int segment = 0; segment < params_.segments; ++segment) {
    const Offset offset = segment * p * block + comm.rank() * block;
    const DataView data =
        DataView::synthetic(seed, segment * block, block);
    if (const Status s = file.write_at_all(offset, data); !s.is_ok()) {
      return s;
    }
  }
  return Status::ok();
}

}  // namespace e10::workloads
