#include "workloads/model.h"

#include <algorithm>

namespace e10::workloads {

Time not_hidden_sync(Time sync, Time compute) {
  return std::max<Time>(0, sync - compute);
}

double eq1_bandwidth(const PhaseModel& phase) {
  const Time denom =
      phase.write + not_hidden_sync(phase.sync, phase.compute);
  return bandwidth_gib(phase.bytes, denom);
}

double eq2_bandwidth(const std::vector<PhaseModel>& phases) {
  Offset bytes = 0;
  Time denom = 0;
  for (const PhaseModel& phase : phases) {
    bytes += phase.bytes;
    denom += phase.write + not_hidden_sync(phase.sync, phase.compute);
  }
  return bandwidth_gib(bytes, denom);
}

Time estimate_sync_time(Offset bytes_per_aggregator, std::size_t aggregators,
                        const TestbedParams& testbed) {
  if (bytes_per_aggregator <= 0 || aggregators == 0) return 0;
  // The sync thread stages chunk by chunk, synchronously: read the chunk
  // from the SSD, write it to the PFS, wait for the acknowledgement. The
  // per-aggregator throughput is one chunk per round trip; the PFS media
  // bandwidth shared across aggregators caps the aggregate.
  const double chunk = 512.0 * 1024.0;  // ind_wr_buffer_size (paper §IV)
  const double ssd_leg =
      static_cast<double>(testbed.lfs.device.base_latency) * 1e-9 +
      chunk / static_cast<double>(testbed.lfs.device.read_bytes_per_second);
  const double net_leg =
      static_cast<double>(testbed.fabric.link_latency) * 1e-9 +
      chunk / static_cast<double>(testbed.fabric.nic_bytes_per_second);
  const double pfs_leg =
      static_cast<double>(testbed.pfs.server_rpc_overhead +
                          testbed.pfs.target.base_latency) *
          1e-9 +
      chunk / static_cast<double>(testbed.pfs.target.write_bytes_per_second);
  const double per_agg_bps = chunk / (ssd_leg + net_leg + pfs_leg);
  const double pfs_total_bps =
      static_cast<double>(testbed.pfs.target.write_bytes_per_second) *
      static_cast<double>(testbed.pfs.data_servers);
  const double share_bps = pfs_total_bps / static_cast<double>(aggregators);
  const double bps = std::min(per_agg_bps, share_bps);
  return units::seconds_f(static_cast<double>(bytes_per_aggregator) / bps);
}

}  // namespace e10::workloads
