// The simulated testbed: one object wiring the full stack together.
//
// Default calibration reproduces the paper's DEEP-ER cluster (§IV-A):
//   - 64 compute nodes x 8 ranks = 512 MPI processes
//   - BeeGFS-like PFS: 4 data servers (HDD-RAID targets) + 1 metadata
//     server, ~2 GiB/s aggregate streaming ceiling, 4 MiB stripes x 4
//   - per-node 30 GiB ext4 scratch partition on a SATA SSD (~340 MiB/s
//     write), used by the E10 cache layer
//   - InfiniBand-QDR-like fabric
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "adio/io_context.h"
#include "cache/lock_table.h"
#include "fault/fault_injector.h"
#include "lfs/local_fs.h"
#include "mpi/world.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "prof/profiler.h"
#include "sim/engine.h"

namespace e10::workloads {

struct TestbedParams {
  std::size_t compute_nodes = 64;
  std::size_t ranks_per_node = 8;
  net::FabricParams fabric;
  pfs::PfsParams pfs;
  lfs::LfsParams lfs;
  mpi::MpiParams mpi;
  std::uint64_t seed = 2016;
};

/// The paper's testbed at full scale (512 ranks).
TestbedParams deep_er_testbed();

/// A small deterministic testbed for unit tests (8 ranks, no jitter).
TestbedParams small_testbed();

class Platform {
 public:
  explicit Platform(const TestbedParams& params = deep_er_testbed());

  /// Spawns `main` on every rank; call run() to execute.
  void launch(std::function<void(mpi::Comm)> rank_main) {
    world.launch(std::move(rank_main));
  }

  /// Runs the simulation to completion.
  void run() { engine.run(); }

  const TestbedParams& params() const { return params_; }
  int ranks() const { return world.size(); }

  sim::Engine engine;
  net::Fabric fabric;  // compute nodes, then data servers, then metadata
  pfs::Pfs pfs;
  lfs::LocalFsSet lfs;
  cache::LockTable locks;
  prof::Profiler profiler;
  /// Shared by every layer; tracer is disabled until set_enabled(true).
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  /// Shared fault injector, wired into pfs, every node's lfs and the ctx;
  /// unarmed (one branch per hook) until faults.arm() installs a plan.
  fault::FaultInjector faults;
  adio::IoContext ctx;
  mpi::World world;

 private:
  static std::vector<std::size_t> server_nodes(const TestbedParams& params);

  TestbedParams params_;
};

}  // namespace e10::workloads
