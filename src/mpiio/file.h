// MPI-IO public API (the MPI_File_* surface the benchmarks and examples
// program against). Each rank holds its own File object, opened collectively
// over a communicator — mirroring how every MPI process holds its own
// MPI_File handle backed by ROMIO's ADIO file.
//
// Offsets are expressed in view-stream bytes (etype = MPI_BYTE): after
// set_view(disp, type), offset k addresses the k-th data byte that the view
// maps into the file — standard MPI file-view semantics for byte etypes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "adio/adio_file.h"
#include "common/dataview.h"
#include "common/status.h"
#include "mpi/comm.h"
#include "mpi/datatype.h"
#include "mpi/info.h"

namespace e10::mpiio {

class File {
 public:
  File() = default;

  /// MPI_File_open (collective over `comm`). `path` may carry a driver
  /// prefix ("beegfs:/..."). Hints ride in `info` (Tables I and II).
  static Result<File> open(adio::IoContext& ctx, mpi::Comm comm,
                           const std::string& path, int amode,
                           const mpi::Info& info = {});

  /// MPI_File_delete.
  static Status delete_file(adio::IoContext& ctx, const std::string& path);

  bool valid() const { return fd_ != nullptr; }

  /// MPI_File_close (collective). After it returns, all data — including
  /// data cached on node-local NVM — is visible cluster-wide (§III-B).
  Status close();

  /// MPI_File_sync (collective): drains the cache synchronisation.
  Status sync();

  /// MPI_File_set_view (collective); resets the individual file pointer.
  Status set_view(Offset disp, mpi::FlatType filetype);
  Status set_view(Offset disp);  // contiguous byte view

  /// MPI_File_set_atomicity / get_atomicity.
  Status set_atomicity(bool atomic);
  bool atomicity() const;

  /// MPI_File_get_info: hint echo.
  mpi::Info get_info() const;

  /// MPI_File_get_size (bytes in the global file).
  Result<Offset> get_size() const;

  // ---- Explicit offset ----------------------------------------------------
  Status write_at(Offset offset, const DataView& data);        // independent
  Status write_at_all(Offset offset, const DataView& data);    // collective
  Result<DataView> read_at(Offset offset, Offset length);
  Result<DataView> read_at_all(Offset offset, Offset length);

  // ---- Individual file pointer --------------------------------------------
  Status write(const DataView& data);
  Status write_all(const DataView& data);
  Result<DataView> read(Offset length);
  Result<DataView> read_all(Offset length);

  Offset tell() const;
  void seek(Offset offset);

  /// The communicator the file was opened on.
  mpi::Comm comm() const;

  /// Aggregator ranks resolved at open (diagnostics / tests).
  const std::vector<int>& aggregators() const;

  /// Direct access to the ADIO file (tests and the MPIWRAP layer).
  adio::AdioFile* raw() { return fd_.get(); }
  const adio::AdioFile* raw() const { return fd_.get(); }

 private:
  explicit File(std::shared_ptr<adio::AdioFile> fd) : fd_(std::move(fd)) {}

  /// Maps a view-stream byte range onto file extents.
  std::vector<Extent> view_extents(Offset offset, Offset length) const;
  std::vector<mpi::IoPiece> view_pieces(Offset offset,
                                        const DataView& data) const;

  std::shared_ptr<adio::AdioFile> fd_;
};

}  // namespace e10::mpiio
