#include "mpiio/file.h"

#include <stdexcept>

namespace e10::mpiio {

namespace {

DataView concat_in_order(const std::vector<DataView>& parts) {
  if (parts.size() == 1) return parts[0];
  return DataView::concat(parts);
}

}  // namespace

Result<File> File::open(adio::IoContext& ctx, mpi::Comm comm,
                        const std::string& path, int amode,
                        const mpi::Info& info) {
  auto fd = adio::open_coll(ctx, comm, path, amode, info);
  if (!fd.is_ok()) return fd.status();
  return File(std::shared_ptr<adio::AdioFile>(std::move(fd).value()));
}

Status File::delete_file(adio::IoContext& ctx, const std::string& path) {
  const auto [driver, bare] = adio::parse_driver_path(path);
  return ctx.pfs.unlink(bare);
}

Status File::close() {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  const Status s = adio::close(*fd_);
  fd_.reset();
  return s;
}

Status File::sync() {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  return adio::flush(*fd_);
}

Status File::set_view(Offset disp, mpi::FlatType filetype) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  return adio::set_view(*fd_, disp, std::move(filetype));
}

Status File::set_view(Offset disp) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  return adio::set_view(*fd_, disp, std::nullopt);
}

Status File::set_atomicity(bool atomic) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  fd_->atomic_mode = atomic;
  fd_->comm.barrier();  // collective
  return Status::ok();
}

bool File::atomicity() const { return valid() && fd_->atomic_mode; }

mpi::Info File::get_info() const {
  if (!valid()) return mpi::Info();
  mpi::Info info = fd_->hints.to_info();
  // ROMIO resolves cb_nodes to the actual aggregator count.
  info.set("cb_nodes", std::to_string(fd_->aggregators.size()));
  return info;
}

Result<Offset> File::get_size() const {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  const auto stat = fd_->ctx->pfs.stat(fd_->handle);
  if (!stat.is_ok()) return stat.status();
  return stat.value().size;
}

std::vector<Extent> File::view_extents(Offset offset, Offset length) const {
  if (fd_->filetype.has_value()) {
    return fd_->filetype->file_extents(fd_->disp, offset, length);
  }
  if (length == 0) return {};
  return {Extent{fd_->disp + offset, length}};
}

std::vector<mpi::IoPiece> File::view_pieces(Offset offset,
                                            const DataView& data) const {
  if (fd_->filetype.has_value()) {
    return fd_->filetype->map_data(fd_->disp, offset, data);
  }
  if (data.empty()) return {};
  mpi::IoPiece piece;
  piece.file = Extent{fd_->disp + offset, data.size()};
  piece.data = data;
  return {piece};
}

Status File::write_at(Offset offset, const DataView& data) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  if (offset < 0) {
    return Status::error(Errc::invalid_argument, "write_at: offset < 0");
  }
  return adio::write_strided(*fd_, view_pieces(offset, data));
}

Status File::write_at_all(Offset offset, const DataView& data) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  if (offset < 0) {
    return Status::error(Errc::invalid_argument, "write_at_all: offset < 0");
  }
  return adio::write_strided_coll(*fd_, view_pieces(offset, data));
}

Result<DataView> File::read_at(Offset offset, Offset length) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  if (offset < 0 || length < 0) {
    return Status::error(Errc::invalid_argument, "read_at: bad range");
  }
  const std::vector<Extent> extents = view_extents(offset, length);
  auto parts = adio::read_strided(*fd_, extents);
  if (!parts.is_ok()) return parts.status();
  return concat_in_order(parts.value());
}

Result<DataView> File::read_at_all(Offset offset, Offset length) {
  if (!valid()) return Status::error(Errc::invalid_argument, "closed file");
  if (offset < 0 || length < 0) {
    return Status::error(Errc::invalid_argument, "read_at_all: bad range");
  }
  const std::vector<Extent> extents = view_extents(offset, length);
  auto parts = adio::read_strided_coll(*fd_, extents);
  if (!parts.is_ok()) return parts.status();
  return concat_in_order(parts.value());
}

Status File::write(const DataView& data) {
  const Offset at = tell();
  const Status s = write_at(at, data);
  if (s.is_ok()) fd_->fp_ind = at + data.size();
  return s;
}

Status File::write_all(const DataView& data) {
  const Offset at = tell();
  const Status s = write_at_all(at, data);
  if (s.is_ok()) fd_->fp_ind = at + data.size();
  return s;
}

Result<DataView> File::read(Offset length) {
  const Offset at = tell();
  auto r = read_at(at, length);
  if (r.is_ok()) fd_->fp_ind = at + r.value().size();
  return r;
}

Result<DataView> File::read_all(Offset length) {
  const Offset at = tell();
  auto r = read_at_all(at, length);
  if (r.is_ok()) fd_->fp_ind = at + r.value().size();
  return r;
}

Offset File::tell() const {
  if (!valid()) throw std::logic_error("tell on closed file");
  return fd_->fp_ind;
}

void File::seek(Offset offset) {
  if (!valid()) throw std::logic_error("seek on closed file");
  if (offset < 0) throw std::logic_error("seek to negative offset");
  fd_->fp_ind = offset;
}

mpi::Comm File::comm() const {
  if (!valid()) throw std::logic_error("comm on closed file");
  return fd_->comm;
}

const std::vector<int>& File::aggregators() const {
  if (!valid()) throw std::logic_error("aggregators on closed file");
  return fd_->aggregators;
}

}  // namespace e10::mpiio
