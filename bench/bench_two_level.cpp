// Two-level vs flat collective-write exchange across ranks-per-node
// (docs/two_level.md). Keeps the total rank count fixed (512 at paper
// scale, 64 with --quick) and sweeps ranks_per_node x the paper's
// <aggregators>_<cb> combos, running every point once with the flat
// shuffle and once with e10_two_level_flag=enable. The two runs must
// produce identical content checksums — the exchange may only change the
// message schedule, never the bytes — and the bench exits non-zero on any
// mismatch (or, with --check-concurrency, on any checker finding).
//
// The figure of merit is the shuffle portion of the breakdown
// (shuffle_intra + shuffle_all2all + shuffle_inter + exchange, max over
// ranks): the two-level exchange trades an intra-node gather hop for a
// leaders-only inter-node exchange, so its win should grow with
// ranks_per_node.
//
// Flags:
//   --quick             64 total ranks, 1/8 data (smoke scale)
//   --rpn=2,8,16        ranks-per-node sweep (default 2,8,16)
//   --combos=a_bm,...   restrict combos, e.g. --combos=8_4m,64_4m
//   --files=N           files per experiment (default 2 here)
//   --check-concurrency attach the concurrency checker to every run
//   --report=PATH       run-report JSON array of the TWO-LEVEL runs only
//                       (bench_compare-compatible; the flat runs would
//                       collide with them on the point key)
//   --summary=PATH      comparison document in the results/BENCH_*.json
//                       shape: per-point io_time/shuffle_s for both modes,
//                       speedups, checksum equality, exchange volumes
//   --recorded=DATE     "recorded" stamp for the summary document
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "obs/report.h"
#include "workloads/workload.h"

namespace {

using namespace e10;
using namespace e10::units;
using namespace e10::workloads;

struct Options {
  bool quick = false;
  bool check_concurrency = false;
  int files = 2;
  std::vector<std::size_t> rpn = {2, 8, 16};
  std::vector<std::string> combos;  // empty = all
  std::string report_path;
  std::string summary_path;
  std::string recorded;
};

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--check-concurrency") {
      options.check_concurrency = true;
    } else if (arg.rfind("--files=", 0) == 0) {
      options.files = std::stoi(arg.substr(8));
    } else if (arg.rfind("--rpn=", 0) == 0) {
      options.rpn.clear();
      for (const std::string& item : split_list(arg.substr(6))) {
        options.rpn.push_back(static_cast<std::size_t>(std::stoul(item)));
      }
    } else if (arg.rfind("--combos=", 0) == 0) {
      options.combos = split_list(arg.substr(9));
    } else if (arg.rfind("--report=", 0) == 0) {
      options.report_path = arg.substr(9);
    } else if (arg.rfind("--summary=", 0) == 0) {
      options.summary_path = arg.substr(10);
    } else if (arg.rfind("--recorded=", 0) == 0) {
      options.recorded = arg.substr(11);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.rpn.empty() || options.files <= 0) {
    std::fprintf(stderr, "empty --rpn or non-positive --files\n");
    std::exit(2);
  }
  return options;
}

/// Fixed total rank count so the sweep isolates the topology, not the
/// problem size: paper scale keeps the 512 ranks of Fig. 4.
std::size_t total_ranks(const Options& options) {
  return options.quick ? 64 : 512;
}

std::string config_str(const obs::Json& report, const char* key) {
  const obs::Json* config = report.find("config");
  if (config == nullptr) return {};
  const obs::Json* value = config->find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

double derived_num(const obs::Json& report, const char* key) {
  const obs::Json* derived = report.find("derived");
  if (derived == nullptr) return 0.0;
  const obs::Json* value = derived->find(key);
  return value != nullptr && value->is_numeric() ? value->as_number() : 0.0;
}

/// The shuffle portion of the breakdown (max over ranks, per phase): the
/// flat path reports it all under `exchange`, the two-level path under the
/// staged phases. Overcounts waiting that hides behind the write — the
/// critical-path measure below is the honest one.
double shuffle_seconds(const ExperimentResult& result) {
  double total = 0.0;
  for (const prof::Phase phase :
       {prof::Phase::shuffle_intra, prof::Phase::shuffle_all2all,
        prof::Phase::shuffle_inter, prof::Phase::exchange}) {
    total += units::to_seconds(result.breakdown.at(phase));
  }
  return total;
}

/// Shuffle seconds on the causal critical path (obs::analyze_critical_path
/// category attribution): the end-to-end time the exchange actually costs,
/// as opposed to waiting that overlaps the aggregator writes.
double shuffle_critical_path_seconds(const ExperimentResult& result) {
  const obs::Json* categories = result.critical_path.find("categories");
  if (categories == nullptr) return 0.0;
  const obs::Json* shuffle = categories->find("shuffle");
  if (shuffle == nullptr) return 0.0;
  const obs::Json* seconds = shuffle->find("s");
  return seconds != nullptr && seconds->is_numeric() ? seconds->as_number()
                                                     : 0.0;
}

ExperimentResult run_point(const Options& options, std::size_t rpn,
                           int aggregators, Offset cb, bool two_level) {
  bench::BenchOptions scale;
  scale.quick = options.quick;
  scale.files = options.files;

  ExperimentSpec spec;
  spec.testbed = deep_er_testbed();
  spec.testbed.ranks_per_node = rpn;
  spec.testbed.compute_nodes = total_ranks(options) / rpn;
  spec.aggregators = aggregators;
  spec.cb_buffer_size = cb;
  spec.cache_case = CacheCase::disabled;
  spec.two_level = two_level;
  spec.critical_path = true;
  spec.check_concurrency = options.check_concurrency;
  spec.workflow.base_path = "/pfs/two_level";
  spec.workflow.num_files = options.files;
  spec.workflow.compute_delay = bench::compute_delay_for(scale);
  spec.workflow.include_last_phase = false;

  return run_experiment(spec, [](const TestbedParams& testbed) {
    const int ranks =
        static_cast<int>(testbed.compute_nodes * testbed.ranks_per_node);
    return std::make_unique<CollPerfWorkload>(collperf_paper_params(ranks));
  });
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  const std::size_t ranks = total_ranks(options);
  std::printf("## two-level exchange vs flat shuffle (%zu ranks, %d files%s)\n",
              ranks, options.files, options.quick ? ", QUICK scale" : "");
  std::printf("%-4s %-8s %13s %13s %9s %12s %12s %12s %12s %7s\n", "rpn",
              "combo", "io_flat [s]", "io_2lvl [s]", "io_spdup",
              "cp_flat [s]", "cp_2lvl [s]", "shfl_flat[s]", "shfl_2lvl[s]",
              "chksum");
  std::fflush(stdout);

  bench::BenchOptions scale;
  scale.quick = options.quick;
  const auto sweep = bench::sweep_for(scale);

  obs::Json reports = obs::Json::array();
  obs::Json entries = obs::Json::array();
  bool checksums_ok = true;
  std::size_t findings = 0;
  std::size_t points = 0;
  std::size_t shuffle_faster_high_rpn = 0;
  std::size_t high_rpn_points = 0;

  for (const std::size_t rpn : options.rpn) {
    if (ranks % rpn != 0) {
      std::fprintf(stderr, "skipping rpn=%zu: does not divide %zu ranks\n",
                   rpn, ranks);
      continue;
    }
    for (const auto& [aggregators, cb] : sweep) {
      const std::string combo = std::to_string(aggregators) + "_" +
                                std::to_string(cb / MiB) + "m";
      if (!options.combos.empty() &&
          std::find(options.combos.begin(), options.combos.end(), combo) ==
              options.combos.end()) {
        continue;
      }
      const ExperimentResult flat =
          run_point(options, rpn, aggregators, cb, false);
      const ExperimentResult two =
          run_point(options, rpn, aggregators, cb, true);
      findings += flat.analysis_races + flat.analysis_cycles +
                  two.analysis_races + two.analysis_cycles;
      const std::string flat_sum = config_str(flat.report, "content_checksum");
      const std::string two_sum = config_str(two.report, "content_checksum");
      const bool match = !flat_sum.empty() && flat_sum == two_sum;
      checksums_ok = checksums_ok && match;

      const double io_flat = units::to_seconds(flat.workflow.io_time);
      const double io_two = units::to_seconds(two.workflow.io_time);
      const double shuffle_flat = shuffle_seconds(flat);
      const double shuffle_two = shuffle_seconds(two);
      const double cp_flat = shuffle_critical_path_seconds(flat);
      const double cp_two = shuffle_critical_path_seconds(two);
      ++points;
      // The acceptance measure: shuffle time on the causal critical path,
      // where the two-level exchange must win once nodes are dense enough.
      if (rpn >= 8) {
        ++high_rpn_points;
        if (cp_two < cp_flat) ++shuffle_faster_high_rpn;
      }
      std::printf(
          "%-4zu %-8s %13.3f %13.3f %9.3f %12.3f %12.3f %12.3f %12.3f %7s\n",
          rpn, combo.c_str(), io_flat, io_two,
          io_two > 0 ? io_flat / io_two : 0.0, cp_flat, cp_two, shuffle_flat,
          shuffle_two, match ? "match" : "MISMATCH");
      std::fflush(stdout);

      obs::Json entry = obs::Json::object();
      entry.set("combo", obs::Json::str(combo));
      entry.set("ranks_per_node",
                obs::Json::integer(static_cast<std::int64_t>(rpn)));
      entry.set("io_time_s_flat", obs::Json::number(io_flat));
      entry.set("io_time_s_two_level", obs::Json::number(io_two));
      entry.set("io_speedup",
                obs::Json::number(io_two > 0 ? io_flat / io_two : 0.0));
      entry.set("shuffle_critical_path_s_flat", obs::Json::number(cp_flat));
      entry.set("shuffle_critical_path_s_two_level",
                obs::Json::number(cp_two));
      entry.set("shuffle_s_flat", obs::Json::number(shuffle_flat));
      entry.set("shuffle_s_two_level", obs::Json::number(shuffle_two));
      entry.set("two_level_rounds",
                obs::Json::number(derived_num(two.report, "two_level.rounds")));
      entry.set("intra_bytes", obs::Json::number(derived_num(
                                   two.report, "two_level.intra_bytes")));
      entry.set("inter_bytes", obs::Json::number(derived_num(
                                   two.report, "two_level.inter_bytes")));
      entry.set("content_checksum_match", obs::Json::boolean(match));
      entries.push(std::move(entry));
      // Only the two-level runs go to --report: bench_compare keys points
      // by combo/cache_case and would silently pair the wrong rows if both
      // modes of one point shared a file. The rpn suffix keeps the three
      // topologies of one combo apart in that key for the same reason.
      obs::Json report = two.report;
      if (const obs::Json* config = report.find("config")) {
        obs::Json patched = *config;
        patched.set("combo",
                    obs::Json::str(combo + "_rpn" + std::to_string(rpn)));
        report.set("config", std::move(patched));
      }
      reports.push(std::move(report));
    }
  }

  std::printf(
      "\n%zu points; checksums %s; shuffle critical path faster at rpn>=8: "
      "%zu/%zu\n",
      points, checksums_ok ? "all match" : "MISMATCH", shuffle_faster_high_rpn,
      high_rpn_points);
  if (options.check_concurrency) {
    std::printf("concurrency findings: %zu\n", findings);
  }
  std::fflush(stdout);

  if (!options.report_path.empty()) {
    if (const Status s = obs::write_json_file(options.report_path, reports);
        !s.is_ok()) {
      std::fprintf(stderr, "failed to write report to %s: %s\n",
                   options.report_path.c_str(), s.message().c_str());
      return 2;
    }
    std::fprintf(stderr, "report written to %s\n",
                 options.report_path.c_str());
  }
  if (!options.summary_path.empty()) {
    obs::Json doc = obs::Json::object();
    doc.set(
        "description",
        obs::Json::str(
            "Two-level (node-aware domains + intra-node gather + "
            "leaders-only inter-node exchange) vs flat ext2ph shuffle, "
            "coll_perf at fixed total ranks across ranks_per_node, cache "
            "disabled. shuffle_critical_path_s is the shuffle category of "
            "the causal critical-path attribution (the acceptance measure); "
            "shuffle_s sums the max-over-ranks "
            "shuffle_intra/shuffle_all2all/shuffle_inter/exchange phases; "
            "checksums must match per point. See docs/two_level.md."));
    if (!options.recorded.empty()) {
      doc.set("recorded", obs::Json::str(options.recorded));
    }
    doc.set("command",
            obs::Json::str("bench_two_level --rpn=... [--quick] "
                           "[--files=N] [--summary=...]"));
    obs::Json summary = obs::Json::object();
    summary.set("total_ranks",
                obs::Json::integer(static_cast<std::int64_t>(ranks)));
    summary.set("sweep_points",
                obs::Json::integer(static_cast<std::int64_t>(points)));
    summary.set("high_rpn_points",
                obs::Json::integer(static_cast<std::int64_t>(high_rpn_points)));
    summary.set("shuffle_faster_high_rpn",
                obs::Json::integer(
                    static_cast<std::int64_t>(shuffle_faster_high_rpn)));
    summary.set("all_checksums_match", obs::Json::boolean(checksums_ok));
    doc.set("summary", std::move(summary));
    doc.set("entries", std::move(entries));
    if (const Status s = obs::write_json_file(options.summary_path, doc);
        !s.is_ok()) {
      std::fprintf(stderr, "failed to write summary to %s: %s\n",
                   options.summary_path.c_str(), s.message().c_str());
      return 2;
    }
    std::fprintf(stderr, "summary written to %s\n",
                 options.summary_path.c_str());
  }

  if (!checksums_ok) {
    std::fprintf(stderr, "FAIL: two-level changed the output bytes\n");
    return 1;
  }
  if (options.check_concurrency && findings > 0) {
    std::fprintf(stderr, "FAIL: %zu concurrency finding(s)\n", findings);
    return 1;
  }
  return 0;
}
