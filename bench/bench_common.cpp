#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include "fault/fault_plan.h"
#include "obs/report.h"

namespace e10::bench {

using namespace e10::units;
using workloads::CacheCase;
using workloads::ExperimentResult;
using workloads::ExperimentSpec;

namespace {

void split_list(const std::string& list, std::vector<std::string>& out) {
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    const std::string item =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    pos = comma == std::string::npos ? comma : comma + 1;
  }
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--no-breakdown") {
      options.breakdown = false;
    } else if (arg.starts_with("--files=")) {
      options.files = std::stoi(arg.substr(8));
    } else if (arg.starts_with("--trace=")) {
      options.trace_path = arg.substr(8);
    } else if (arg.starts_with("--report=")) {
      options.report_path = arg.substr(9);
    } else if (arg == "--critical-path") {
      options.critical_path = true;
    } else if (arg.starts_with("--critical-path=")) {
      options.critical_path = true;
      options.critical_path_path = arg.substr(16);
    } else if (arg.starts_with("--combos=")) {
      split_list(arg.substr(9), options.combos);
    } else if (arg.starts_with("--cases=")) {
      split_list(arg.substr(8), options.cases);
      for (const std::string& name : options.cases) {
        if (name != "disabled" && name != "enabled" && name != "theoretical") {
          std::fprintf(stderr,
                       "--cases: unknown case '%s' (expected disabled, "
                       "enabled or theoretical)\n",
                       name.c_str());
          std::exit(2);
        }
      }
    } else if (arg == "--check-concurrency") {
      options.check_concurrency = true;
    } else if (arg.starts_with("--pipeline=")) {
      const std::string value = arg.substr(11);
      if (value == "on") {
        options.pipeline = true;
      } else if (value == "off") {
        options.pipeline = false;
      } else {
        std::fprintf(stderr, "--pipeline: expected on or off, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (arg.starts_with("--sync-streams=")) {
      options.sync_streams = std::stoi(arg.substr(15));
      if (options.sync_streams < 1) {
        std::fprintf(stderr, "--sync-streams: expected a positive count\n");
        std::exit(2);
      }
    } else if (arg.starts_with("--coalesce=")) {
      const std::string value = arg.substr(11);
      if (value == "on") {
        options.coalesce = true;
      } else if (value == "off") {
        options.coalesce = false;
      } else {
        std::fprintf(stderr, "--coalesce: expected on or off, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (arg.starts_with("--two-level=")) {
      const std::string value = arg.substr(12);
      if (value == "on") {
        options.two_level = true;
      } else if (value == "off") {
        options.two_level = false;
      } else {
        std::fprintf(stderr, "--two-level: expected on or off, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (arg.starts_with("--faults=")) {
      options.faults_spec = arg.substr(9);
      // Validate up front so a typo fails before any experiment runs.
      if (const auto plan = fault::FaultPlan::parse(options.faults_spec);
          !plan.is_ok()) {
        std::fprintf(stderr, "--faults: %s\n",
                     plan.status().message().c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    }
  }
  return options;
}

bool BenchOptions::combo_selected(const std::string& label) const {
  if (combos.empty()) return true;
  return std::find(combos.begin(), combos.end(), label) != combos.end();
}

bool BenchOptions::case_selected(CacheCase cache_case) const {
  if (cases.empty()) return true;
  const char* name = nullptr;
  switch (cache_case) {
    case CacheCase::disabled: name = "disabled"; break;
    case CacheCase::enabled: name = "enabled"; break;
    case CacheCase::theoretical: name = "theoretical"; break;
  }
  return std::find(cases.begin(), cases.end(), name) != cases.end();
}

workloads::TestbedParams testbed_for(const BenchOptions& options) {
  workloads::TestbedParams testbed = workloads::deep_er_testbed();
  if (options.quick) {
    testbed.compute_nodes = 16;
    testbed.ranks_per_node = 4;  // 64 ranks
  }
  return testbed;
}

std::vector<std::pair<int, Offset>> sweep_for(const BenchOptions& options) {
  if (!options.quick) return workloads::paper_sweep();
  // Quarter-scale aggregator counts at 64 ranks / 16 nodes.
  std::vector<std::pair<int, Offset>> sweep;
  for (const int aggregators : {2, 4, 8, 16}) {
    for (const Offset cb : {4 * MiB, 16 * MiB, 64 * MiB}) {
      sweep.emplace_back(aggregators, cb);
    }
  }
  return sweep;
}

Time compute_delay_for(const BenchOptions& options) {
  // Paper: 30 s, "in most cases enough to hide the synchronisation time".
  // Quick scale moves 1/8 of the data, so scale the delay accordingly.
  return options.quick ? units::seconds_f(3.75) : seconds(30);
}

std::vector<ExperimentResult> run_figure(const FigureSpec& figure,
                                         const BenchOptions& options) {
  std::vector<ExperimentResult> results;
  const auto sweep = sweep_for(options);
  std::printf("## %s: %s%s\n", figure.figure.c_str(),
              figure.benchmark.c_str(), options.quick ? " [QUICK scale]" : "");
  std::fflush(stdout);

  fault::FaultPlan fault_plan;
  if (!options.faults_spec.empty()) {
    // Already validated by parse(); re-parse to get the plan.
    fault_plan = fault::FaultPlan::parse(options.faults_spec).value();
    std::printf("fault scenario: %s\n", fault_plan.summary().c_str());
    std::fflush(stdout);
  }

  bool trace_pending = !options.trace_path.empty();
  // Prefer tracing a cache-enabled run (the case the paper's pipeline is
  // about), but only when that case is actually selected — --trace must
  // compose with --cases=disabled.
  const bool prefer_enabled = options.case_selected(CacheCase::enabled);
  for (const CacheCase cache_case :
       {CacheCase::disabled, CacheCase::enabled, CacheCase::theoretical}) {
    if (!options.case_selected(cache_case)) continue;
    for (const auto& [aggregators, cb] : sweep) {
      ExperimentSpec spec;
      spec.faults = fault_plan;
      spec.testbed = testbed_for(options);
      spec.aggregators = aggregators;
      spec.cb_buffer_size = cb;
      spec.cache_case = cache_case;
      spec.pipeline = options.pipeline;
      spec.sync_streams = options.sync_streams;
      spec.flush_coalesce = options.coalesce;
      spec.two_level = options.two_level;
      spec.workflow.base_path = "/pfs/" + figure.benchmark;
      spec.workflow.num_files = options.files;
      spec.workflow.compute_delay = compute_delay_for(options);
      spec.workflow.include_last_phase = figure.include_last_phase;
      spec.check_concurrency = options.check_concurrency;
      if (!options.combo_selected(workloads::combo_label(spec))) continue;
      // Trace exactly one run (tracing every run would be huge); the
      // critical-path analyzer is cheap and runs on all of them.
      spec.trace = trace_pending &&
                   (cache_case == CacheCase::enabled || !prefer_enabled);
      spec.critical_path = options.critical_path;
      ExperimentResult result =
          workloads::run_experiment(spec, figure.factory);
      if (spec.trace) {
        trace_pending = false;
        std::ofstream out(options.trace_path);
        out << result.trace_json;
        if (!out) {
          std::fprintf(stderr, "  failed to write trace to %s\n",
                       options.trace_path.c_str());
        } else {
          std::fprintf(stderr, "  trace for %s written to %s\n",
                       result.combo.c_str(), options.trace_path.c_str());
        }
      }
      std::fprintf(stderr, "  done %s %s: %.2f GiB/s\n",
                   workloads::to_string(cache_case), result.combo.c_str(),
                   result.bandwidth_gib);
      if (options.critical_path) {
        std::fprintf(stderr,
                     "  critical path: bottleneck=%s attributed=%.1f%%\n",
                     result.bottleneck.c_str(),
                     result.attributed_fraction * 100.0);
      }
      if ((spec.trace || spec.critical_path) && result.trace_open_spans > 0) {
        std::fprintf(stderr, "  WARNING: %zu trace span(s) left open\n",
                     result.trace_open_spans);
      }
      if (options.check_concurrency) {
        std::fprintf(stderr,
                     "  concurrency: %zu races, %zu lock-order cycles "
                     "(%zu shared accesses checked)\n",
                     result.analysis_races, result.analysis_cycles,
                     result.analysis_shared_accesses);
      }
      results.push_back(std::move(result));
    }
  }

  print_bandwidth_table(figure.benchmark + " perceived write bandwidth",
                        results);
  if (options.breakdown) {
    print_breakdown_table(figure.benchmark + " breakdown, cache enabled",
                          CacheCase::enabled, results);
    print_breakdown_table(figure.benchmark + " breakdown, cache disabled",
                          CacheCase::disabled, results);
    print_sync_table(figure.benchmark + " background sync, cache enabled",
                     results);
    print_tail_table(figure.benchmark + " phase tails, cache enabled",
                     CacheCase::enabled, results);
    print_tail_table(figure.benchmark + " phase tails, cache disabled",
                     CacheCase::disabled, results);
  }
  if (options.critical_path) {
    print_critical_path_summary(figure.benchmark + " critical path", results);
    if (!results.empty() && !results.front().critical_path_text.empty()) {
      const ExperimentResult& first = results.front();
      std::printf("\n### %s critical path detail (%s %s)\n",
                  figure.benchmark.c_str(),
                  workloads::to_string(first.cache_case), first.combo.c_str());
      std::fputs(first.critical_path_text.c_str(), stdout);
      std::fflush(stdout);
    }
    if (!options.critical_path_path.empty()) {
      obs::Json sections = obs::Json::array();
      for (const ExperimentResult& r : results) {
        if (r.critical_path.is_null()) continue;
        obs::Json entry = obs::Json::object();
        entry.set("combo", obs::Json::str(r.combo));
        entry.set("cache_case",
                  obs::Json::str(workloads::to_string(r.cache_case)));
        entry.set("critical_path", r.critical_path);
        sections.push(std::move(entry));
      }
      if (const Status s =
              obs::write_json_file(options.critical_path_path, sections);
          !s.is_ok()) {
        std::fprintf(stderr, "  failed to write critical path to %s: %s\n",
                     options.critical_path_path.c_str(),
                     s.message().c_str());
      } else {
        std::fprintf(stderr, "  critical path written to %s\n",
                     options.critical_path_path.c_str());
      }
    }
  }
  if (options.check_concurrency) {
    std::size_t races = 0;
    std::size_t cycles = 0;
    for (const ExperimentResult& r : results) {
      races += r.analysis_races;
      cycles += r.analysis_cycles;
    }
    std::printf(
        "\n### concurrency analysis: %zu races, %zu lock-order cycles "
        "across %zu runs\n",
        races, cycles, results.size());
    std::fflush(stdout);
  }
  if (!options.report_path.empty()) {
    obs::Json report = obs::Json::array();
    for (const ExperimentResult& r : results) report.push(r.report);
    if (const Status s = obs::write_json_file(options.report_path, report);
        !s.is_ok()) {
      std::fprintf(stderr, "  failed to write report to %s: %s\n",
                   options.report_path.c_str(), s.message().c_str());
    } else {
      std::fprintf(stderr, "  report written to %s\n",
                   options.report_path.c_str());
    }
  }
  return results;
}

void print_bandwidth_table(const std::string& title,
                           const std::vector<ExperimentResult>& results) {
  // Rows: combos in sweep order; columns: the three cases.
  std::vector<std::string> combos;
  for (const ExperimentResult& r : results) {
    if (std::find(combos.begin(), combos.end(), r.combo) == combos.end()) {
      combos.push_back(r.combo);
    }
  }
  std::printf("\n### %s [GiB/s]\n", title.c_str());
  std::printf("%-10s %18s %18s %18s\n", "combo", "BW_cache_disable",
              "BW_cache_enable", "TBW_cache_enable");
  for (const std::string& combo : combos) {
    double bw[3] = {0, 0, 0};
    for (const ExperimentResult& r : results) {
      if (r.combo == combo) {
        bw[static_cast<int>(r.cache_case)] = r.bandwidth_gib;
      }
    }
    std::printf("%-10s %18.2f %18.2f %18.2f\n", combo.c_str(), bw[0], bw[1],
                bw[2]);
  }
  std::fflush(stdout);
}

void print_breakdown_table(const std::string& title, CacheCase cache_case,
                           const std::vector<ExperimentResult>& results) {
  static constexpr prof::Phase kShown[] = {
      prof::Phase::offset_exchange, prof::Phase::shuffle_intra,
      prof::Phase::shuffle_all2all, prof::Phase::shuffle_inter,
      prof::Phase::exchange,        prof::Phase::write_contig,
      prof::Phase::post_write,      prof::Phase::not_hidden_sync,
  };
  std::printf("\n### %s [s, max over ranks]\n", title.c_str());
  std::printf("%-10s", "combo");
  for (const prof::Phase phase : kShown) {
    std::printf(" %16s", prof::phase_name(phase));
  }
  std::printf("\n");
  for (const ExperimentResult& r : results) {
    if (r.cache_case != cache_case) continue;
    std::printf("%-10s", r.combo.c_str());
    for (const prof::Phase phase : kShown) {
      std::printf(" %16.3f", units::to_seconds(r.breakdown.at(phase)));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void print_sync_table(const std::string& title,
                      const std::vector<ExperimentResult>& results) {
  std::printf("\n### %s\n", title.c_str());
  std::printf("%-10s %10s %12s %10s %10s %10s %10s %10s %10s %10s\n", "combo",
              "requests", "synced_gib", "chunks", "queue_hwm", "busy_s",
              "overlap", "coalesce", "drain_gib", "stream_ovl");
  for (const ExperimentResult& r : results) {
    if (r.cache_case != CacheCase::enabled) continue;
    std::printf(
        "%-10s %10llu %12.2f %10llu %10llu %10.3f %10.3f %10.2f %10.2f "
        "%10.3f\n",
        r.combo.c_str(), static_cast<unsigned long long>(r.sync.requests),
        static_cast<double>(r.sync.bytes_synced) / static_cast<double>(GiB),
        static_cast<unsigned long long>(r.sync.staging_chunks),
        static_cast<unsigned long long>(r.sync.queue_depth_high_water),
        units::to_seconds(r.sync.busy_time), r.flush_overlap_ratio,
        r.sync_coalesce_ratio, r.sync_flush_bandwidth_gib,
        r.sync_stream_overlap_ratio);
  }
  std::fflush(stdout);
}

void print_tail_table(const std::string& title, CacheCase cache_case,
                      const std::vector<ExperimentResult>& results) {
  static constexpr prof::Phase kShown[] = {
      prof::Phase::shuffle_intra,   prof::Phase::shuffle_all2all,
      prof::Phase::shuffle_inter,   prof::Phase::exchange,
      prof::Phase::write_contig,    prof::Phase::flush_wait,
      prof::Phase::not_hidden_sync,
  };
  std::printf("\n### %s [s, over ranks]\n", title.c_str());
  std::printf("%-10s %-18s %10s %10s %10s %10s\n", "combo", "phase", "p50",
              "p95", "p99", "max");
  for (const ExperimentResult& r : results) {
    if (r.cache_case != cache_case) continue;
    const obs::Json* phases = r.report.find("phases");
    if (phases == nullptr) continue;
    for (const prof::Phase phase : kShown) {
      const obs::Json* row = phases->find(prof::phase_name(phase));
      if (row == nullptr) continue;
      const auto stat = [&](const char* key) {
        const obs::Json* value = row->find(key);
        return value == nullptr ? 0.0 : value->as_number();
      };
      std::printf("%-10s %-18s %10.3f %10.3f %10.3f %10.3f\n",
                  r.combo.c_str(), prof::phase_name(phase), stat("p50_s"),
                  stat("p95_s"), stat("p99_s"), stat("max_s"));
    }
  }
  std::fflush(stdout);
}

void print_critical_path_summary(
    const std::string& title, const std::vector<ExperimentResult>& results) {
  static constexpr const char* kCategories[] = {
      "shuffle", "write", "flush", "lock_wait", "nic_contention", "idle",
  };
  std::printf("\n### %s [fraction of end-to-end time]\n", title.c_str());
  std::printf("%-10s %-18s %-14s %10s", "combo", "case", "bottleneck",
              "attributed");
  for (const char* category : kCategories) std::printf(" %14s", category);
  std::printf("\n");
  for (const ExperimentResult& r : results) {
    if (r.critical_path.is_null()) continue;
    std::printf("%-10s %-18s %-14s %9.1f%%", r.combo.c_str(),
                workloads::to_string(r.cache_case), r.bottleneck.c_str(),
                r.attributed_fraction * 100.0);
    const obs::Json* categories = r.critical_path.find("categories");
    for (const char* category : kCategories) {
      double fraction = 0.0;
      if (categories != nullptr) {
        if (const obs::Json* entry = categories->find(category);
            entry != nullptr) {
          if (const obs::Json* value = entry->find("fraction");
              value != nullptr) {
            fraction = value->as_number();
          }
        }
      }
      std::printf(" %14.3f", fraction);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace e10::bench
