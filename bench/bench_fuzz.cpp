// Adversarial scenario fuzzer for the collective-write stack
// (docs/fuzzing.md).
//
// Modes:
//   bench_fuzz [--seed=N] [--runs=N] [--max-ranks=N] [--crash-every=N]
//              [--out=DIR] [--no-cross-hints]
//       Random fuzzing: run N generated scenarios (every crash-every'th is
//       a crash-point/recovery scenario) against the four-way oracle. On
//       the first violation the scenario is shrunk to a minimal repro and
//       both the original and the minimal spec are written to DIR.
//   bench_fuzz --replay=FILE [--out=DIR]
//       Replay one spec file (as written by a failing run) with the full
//       oracle set; shrinks and reports if it still fails.
//   bench_fuzz --self-test [--seed=N] [--out=DIR]
//       Known-bug drill: run a scenario with an intentional lost-write bug
//       and verify the rig catches it AND shrinks it — proving the fuzzer
//       would notice real data loss. Fails (exit 1) if the bug slips by.
//
// Exit codes: 0 = all scenarios passed (or self-test proved the rig works),
// 1 = an oracle violation was found (repro written), 2 = usage/spec error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/fuzz/runner.h"
#include "src/fuzz/scenario.h"
#include "src/fuzz/shrink.h"

namespace {

using e10::fuzz::RunOptions;
using e10::fuzz::RunResult;
using e10::fuzz::Scenario;
using e10::fuzz::ScenarioLimits;
using e10::fuzz::ShrinkResult;

struct Options {
  std::uint64_t seed = 1;
  int runs = 200;
  /// Rank ceiling per scenario. 32 since the engine hot-path work — the
  /// allocation-free scheduler keeps even the biggest scenarios fast
  /// enough for the 200-run CI smoke.
  int max_ranks = 32;
  int crash_every = 3;  // every crash_every'th scenario gets a crash point
  std::string out_dir = ".";
  std::string replay_path;
  bool self_test = false;
  bool cross_hints = true;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr,
               "bench_fuzz: %s\n"
               "usage: bench_fuzz [--seed=N] [--runs=N] [--max-ranks=N]\n"
               "                  [--crash-every=N] [--out=DIR]\n"
               "                  [--no-cross-hints]\n"
               "       bench_fuzz --replay=FILE [--out=DIR]\n"
               "       bench_fuzz --self-test [--seed=N] [--out=DIR]\n",
               what.c_str());
  std::exit(2);
}

bool consume(const std::string& arg, const char* prefix, std::string* value) {
  const std::size_t n = std::string(prefix).size();
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(n);
  return true;
}

long long parse_int(const std::string& text, const char* flag) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    usage_error(std::string(flag) + " expects an integer, got '" + text + "'");
  }
  return v;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (consume(arg, "--seed=", &value)) {
      opt.seed = static_cast<std::uint64_t>(parse_int(value, "--seed"));
    } else if (consume(arg, "--runs=", &value)) {
      opt.runs = static_cast<int>(parse_int(value, "--runs"));
      if (opt.runs <= 0) usage_error("--runs must be positive");
    } else if (consume(arg, "--max-ranks=", &value)) {
      opt.max_ranks = static_cast<int>(parse_int(value, "--max-ranks"));
      if (opt.max_ranks <= 0) usage_error("--max-ranks must be positive");
    } else if (consume(arg, "--crash-every=", &value)) {
      opt.crash_every = static_cast<int>(parse_int(value, "--crash-every"));
      if (opt.crash_every <= 0) usage_error("--crash-every must be positive");
    } else if (consume(arg, "--out=", &value)) {
      opt.out_dir = value;
    } else if (consume(arg, "--replay=", &value)) {
      opt.replay_path = value;
    } else if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--no-cross-hints") {
      opt.cross_hints = false;
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  return opt;
}

ScenarioLimits limits_for(const Options& opt) {
  ScenarioLimits limits;
  // Multi-rank nodes whenever the budget allows: they cover the shared
  // per-node cache and intra-node exchange paths single-rank nodes skip.
  limits.max_ranks_per_node =
      opt.max_ranks >= 16 ? 4 : (opt.max_ranks >= 4 ? 2 : 1);
  limits.max_nodes = std::max<std::size_t>(
      1, static_cast<std::size_t>(opt.max_ranks) / limits.max_ranks_per_node);
  return limits;
}

std::string spec_path(const Options& opt, std::uint64_t seed,
                      const char* suffix) {
  return opt.out_dir + "/fuzz_repro_seed" + std::to_string(seed) + suffix;
}

void write_spec(const std::string& path, const Scenario& scenario) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_fuzz: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << scenario.to_spec();
  std::fprintf(stderr, "bench_fuzz: wrote %s\n", path.c_str());
}

void print_failure(const Scenario& scenario, const RunResult& result) {
  std::fprintf(stderr, "bench_fuzz: ORACLE VIOLATION\n  scenario: %s\n",
               scenario.summary().c_str());
  std::fprintf(stderr, "  report: %s\n", result.report.to_text().c_str());
  std::istringstream lines(result.violations_text());
  std::string line;
  while (std::getline(lines, line)) {
    std::fprintf(stderr, "  violation: %s\n", line.c_str());
  }
}

/// Shrinks a failing scenario and writes original + minimal repro specs.
void emit_repro(const Options& opt, const Scenario& scenario,
                const RunResult& result, const RunOptions& run_options) {
  print_failure(scenario, result);
  write_spec(spec_path(opt, scenario.seed, ".spec"), scenario);
  RunOptions search = run_options;
  search.cross_check_hints = false;
  const ShrinkResult shrunk = e10::fuzz::shrink(scenario, search);
  std::fprintf(stderr,
               "bench_fuzz: shrunk in %d evaluations%s\n  minimal: %s\n",
               shrunk.evaluations, shrunk.exhausted ? " (budget hit)" : "",
               shrunk.minimal.summary().c_str());
  write_spec(spec_path(opt, scenario.seed, ".min.spec"), shrunk.minimal);
}

int run_replay(const Options& opt) {
  std::ifstream in(opt.replay_path);
  if (!in) {
    std::fprintf(stderr, "bench_fuzz: cannot read %s\n",
                 opt.replay_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Scenario::parse(buffer.str());
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "bench_fuzz: bad spec %s: %s\n",
                 opt.replay_path.c_str(),
                 parsed.status().to_string().c_str());
    return 2;
  }
  const Scenario scenario = parsed.value();
  RunOptions run_options;
  run_options.cross_check_hints = opt.cross_hints;
  std::fprintf(stderr, "bench_fuzz: replaying %s\n  %s\n",
               opt.replay_path.c_str(), scenario.summary().c_str());
  const RunResult result = run_scenario(scenario, run_options);
  std::fprintf(stderr, "  report: %s\n", result.report.to_text().c_str());
  if (result.ok()) {
    std::fprintf(stderr, "bench_fuzz: replay passed all oracles\n");
    return 0;
  }
  emit_repro(opt, scenario, result, run_options);
  return 1;
}

int run_self_test(const Options& opt) {
  // A clean scenario with a deliberately corrupted write path: the stack
  // silently drops one extent while the reference model keeps it. The rig
  // passes the drill only if the oracle flags the run AND the shrinker
  // produces a still-failing minimal repro.
  Scenario scenario =
      Scenario::generate(opt.seed, limits_for(opt), /*want_crash=*/false);
  scenario.fault_spec.clear();  // the bug must be caught without any faults
  scenario.crash_frac = 0.0;
  scenario.crash_at.reset();
  scenario.bug = e10::fuzz::BugKind::drop_extent;

  RunOptions run_options;
  run_options.cross_check_hints = false;  // byte oracle must catch this alone
  std::fprintf(stderr, "bench_fuzz: self-test scenario: %s\n",
               scenario.summary().c_str());
  const RunResult result = run_scenario(scenario, run_options);
  if (result.ok()) {
    std::fprintf(stderr,
                 "bench_fuzz: SELF-TEST FAILED — the injected lost write was "
                 "not detected\n  report: %s\n",
                 result.report.to_text().c_str());
    return 1;
  }
  print_failure(scenario, result);
  const ShrinkResult shrunk = e10::fuzz::shrink(scenario, run_options);
  if (shrunk.result.ok()) {
    std::fprintf(stderr,
                 "bench_fuzz: SELF-TEST FAILED — shrinking lost the bug\n");
    return 1;
  }
  if (shrunk.minimal.concrete_pieces().size() >
      scenario.concrete_pieces().size()) {
    std::fprintf(stderr, "bench_fuzz: SELF-TEST FAILED — shrink grew the "
                         "scenario\n");
    return 1;
  }
  write_spec(spec_path(opt, scenario.seed, ".selftest.min.spec"),
             shrunk.minimal);
  std::fprintf(
      stderr,
      "bench_fuzz: self-test OK — bug caught and shrunk from %zu to %zu "
      "pieces in %d evaluations\n",
      scenario.concrete_pieces().size(), shrunk.minimal.pieces.size(),
      shrunk.evaluations);
  return 0;
}

int run_fuzz(const Options& opt) {
  const ScenarioLimits limits = limits_for(opt);
  RunOptions run_options;
  run_options.cross_check_hints = opt.cross_hints;
  int crash_runs = 0;
  std::uint64_t recovered_extents = 0;
  std::int64_t faults_injected = 0;
  for (int i = 0; i < opt.runs; ++i) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(i);
    const bool want_crash = (i % opt.crash_every) == 1;
    const Scenario scenario = Scenario::generate(seed, limits, want_crash);
    const RunResult result = run_scenario(scenario, run_options);
    crash_runs += result.report.stopped ? 1 : 0;
    recovered_extents += result.report.recovered_extents;
    faults_injected += result.report.faults_injected;
    if (!result.ok()) {
      std::fprintf(stderr, "bench_fuzz: scenario %d/%d (seed %llu) failed\n",
                   i + 1, opt.runs,
                   static_cast<unsigned long long>(seed));
      emit_repro(opt, scenario, result, run_options);
      return 1;
    }
    if ((i + 1) % 50 == 0) {
      std::fprintf(stderr, "bench_fuzz: %d/%d scenarios ok (%d crash-point)\n",
                   i + 1, opt.runs, crash_runs);
    }
  }
  std::fprintf(
      stderr,
      "bench_fuzz: PASS — %d scenarios, %d crash-point/recovery runs, "
      "%lld faults injected, %llu extents replayed, 0 violations\n",
      opt.runs, crash_runs, static_cast<long long>(faults_injected),
      static_cast<unsigned long long>(recovered_extents));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (!opt.replay_path.empty() && opt.self_test) {
    usage_error("--replay and --self-test are mutually exclusive");
  }
  if (!opt.replay_path.empty()) return run_replay(opt);
  if (opt.self_test) return run_self_test(opt);
  return run_fuzz(opt);
}
