// Reproduces Fig. 7 (Flash-IO perceived bandwidth) and Fig. 8 (Flash-IO
// collective I/O contribution breakdown, cache enabled). The checkpoint
// file carries 80 blocks/process x 24 variables x 32 KiB chunks plus an
// HDF5-ish metadata header (~30 GiB total at 512 processes); the residual
// sync of the last file is excluded, as for coll_perf.
#include "bench/bench_common.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace e10;
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::FigureSpec figure;
  figure.benchmark = "flash_io";
  figure.figure = "Fig. 7 + Fig. 8";
  figure.include_last_phase = false;
  figure.factory = [](const workloads::TestbedParams&) {
    return std::make_unique<workloads::FlashIoWorkload>();
  };
  (void)bench::run_figure(figure, options);
  return 0;
}
