// Validates the paper's analytic bandwidth model (Equations 1 and 2,
// §III-D) against the simulator: for each aggregator count, predict the
// per-phase sync time Ts analytically, plug it into Eq. 2 with the measured
// collective write time Tc, and compare with the measured bandwidth.
#include <cstdio>

#include "bench/bench_common.h"
#include "workloads/model.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace e10;
  using namespace e10::units;
  using namespace e10::workloads;
  const auto options = bench::BenchOptions::parse(argc, argv);

  std::printf("## Eq. 1/2 model validation (IOR, cache enabled)%s\n",
              options.quick ? " [QUICK scale]" : "");
  std::printf("%-10s %14s %14s %12s %14s\n", "combo", "measured_GiB/s",
              "model_GiB/s", "rel_err", "model_Ts_s");

  const TestbedParams testbed = bench::testbed_for(options);
  const Time compute = bench::compute_delay_for(options);
  const int files = options.files;

  for (const auto& [aggregators, cb] : bench::sweep_for(options)) {
    if (cb != 4 * MiB) continue;  // Ts does not depend on cb; one column
    ExperimentSpec spec;
    spec.testbed = testbed;
    spec.aggregators = aggregators;
    spec.cb_buffer_size = cb;
    spec.cache_case = CacheCase::enabled;
    spec.workflow.base_path = "/pfs/model";
    spec.workflow.num_files = files;
    spec.workflow.compute_delay = compute;
    spec.workflow.include_last_phase = true;
    if (!options.combo_selected(combo_label(spec))) continue;

    const auto result =
        run_experiment(spec, [](const TestbedParams&) {
          return std::make_unique<IorWorkload>();
        });

    // Model: Ts from the analytic staging-pipeline estimate; Tc measured.
    const Offset bytes_per_file = result.workflow.phases[0].bytes;
    const Time ts = estimate_sync_time(
        bytes_per_file / aggregators, static_cast<std::size_t>(aggregators),
        testbed);
    std::vector<PhaseModel> phases;
    for (int k = 0; k < files; ++k) {
      PhaseModel phase;
      phase.bytes = bytes_per_file;
      phase.write =
          result.workflow.phases[static_cast<std::size_t>(k)].write_time;
      phase.sync = ts;
      phase.compute = k == files - 1 ? 0 : compute;
      phases.push_back(phase);
    }
    const double model_bw = eq2_bandwidth(phases);
    const double measured = result.bandwidth_gib;
    const double rel_err =
        measured > 0 ? (model_bw - measured) / measured : 0.0;
    std::printf("%-10s %14.2f %14.2f %11.1f%% %14.1f\n",
                result.combo.c_str(), measured, model_bw, rel_err * 100.0,
                to_seconds(ts));
    std::fflush(stdout);
  }
  return 0;
}
