// Shared harness for the figure-reproduction benches.
//
// Every figure bench sweeps the paper's <aggregators>_<coll_bufsize> combos
// for the three cases (BW cache disable / BW cache enable / TBW cache
// enable) and prints (a) the perceived-bandwidth table (Figs. 4/7/9) and
// (b) the collective I/O time breakdown (Figs. 5/6/8/10).
//
// Flags:
//   --quick            scaled-down run (64 ranks, 1/8 data) for smoke tests
//   --combos=a_bm,...  restrict to a subset, e.g. --combos=64_4m,8_4m
//   --files=N          number of files per experiment (paper: 4)
//   --no-breakdown     skip the breakdown tables
//   --trace=PATH       Chrome trace of one run: the first cache-enabled run
//                      when that case is selected, else the first run (so it
//                      composes with --cases=disabled)
//   --report=PATH      machine-readable run report (JSON array, one entry
//                      per experiment: config + phases + metrics + derived)
//   --critical-path[=PATH]
//                      run the causal critical-path analyzer on every run:
//                      prints the per-run bottleneck summary, the full
//                      attribution table for the first analyzed run and a
//                      per-phase tail-latency table; with =PATH also writes
//                      a JSON array of the per-run critical_path sections.
//                      See docs/observability.md.
//   --cases=a,b        restrict the cache cases, e.g. --cases=enabled
//                      (disabled | enabled | theoretical)
//   --faults=SPEC      arm a fault scenario on every run; SPEC is the
//                      FaultPlan grammar, e.g.
//                      "pfs_write=0.01/timed_out; outage=1@2s-4s; seed=7"
//   --check-concurrency
//                      attach the concurrency checker to every run (lockset
//                      race detection + lock-order cycle analysis); findings
//                      are printed per run and land in the report's
//                      "analysis" section. See docs/static_analysis.md.
//   --pipeline=on|off  double-buffer the collective write's round loop
//                      (default on); off restores the classic synchronous
//                      ext2ph round loop for ablations. See
//                      docs/pipeline.md.
//   --sync-streams=N   concurrent in-flight flush streams per sync thread
//                      (default 4); 1 restores the serial read-back→write
//                      drain. See docs/flush_scheduler.md.
//   --coalesce=on|off  coalesce adjacent queued sync requests into shared
//                      stripe-aligned flush dispatches (default on); off
//                      flushes each request separately for ablations.
//   --two-level=on|off two-level collective-write exchange (default off):
//                      intra-node gather to per-node leaders before a
//                      leaders-only inter-node exchange. See
//                      docs/two_level.md.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "workloads/experiment.h"
#include "workloads/model.h"

namespace e10::bench {

struct BenchOptions {
  bool quick = false;
  bool breakdown = true;
  int files = 4;
  std::vector<std::string> combos;  // empty = all
  std::vector<std::string> cases;   // empty = all three cache cases
  std::string trace_path;           // empty = no trace
  std::string report_path;          // empty = no report
  bool critical_path = false;       // analyze the critical path of each run
  std::string critical_path_path;   // empty = tables only, no JSON file
  std::string faults_spec;          // empty = no fault scenario
  bool check_concurrency = false;   // attach the concurrency checker
  bool pipeline = true;             // double-buffered round loop
  int sync_streams = 4;             // in-flight flush streams per sync thread
  bool coalesce = true;             // coalesce adjacent sync requests
  bool two_level = false;           // two-level collective-write exchange

  static BenchOptions parse(int argc, char** argv);
  bool combo_selected(const std::string& label) const;
  bool case_selected(workloads::CacheCase cache_case) const;
};

struct FigureSpec {
  std::string benchmark;     // "coll_perf", "flash_io", "ior"
  std::string figure;        // "Fig. 4" etc.
  bool include_last_phase = false;
  workloads::WorkloadFactory factory;
};

/// Runs the full sweep for one benchmark and prints the tables. Returns the
/// results for further processing.
std::vector<workloads::ExperimentResult> run_figure(
    const FigureSpec& figure, const BenchOptions& options);

/// Aggregator/cb sweep adapted to the scale (paper combos at 512 ranks;
/// proportionally smaller at --quick scale).
std::vector<std::pair<int, Offset>> sweep_for(const BenchOptions& options);

/// The testbed for the selected scale.
workloads::TestbedParams testbed_for(const BenchOptions& options);

/// Compute delay used between files (30 s at paper scale).
Time compute_delay_for(const BenchOptions& options);

void print_bandwidth_table(
    const std::string& title,
    const std::vector<workloads::ExperimentResult>& results);

void print_breakdown_table(
    const std::string& title, workloads::CacheCase cache_case,
    const std::vector<workloads::ExperimentResult>& results);

/// Sync-thread totals per combo (cache-enabled runs only): requests, bytes,
/// staging dispatches, queue high-water mark, busy time, flush-overlap
/// ratio, plus the flush-scheduler figures (coalesce ratio, drain
/// bandwidth, stream overlap).
void print_sync_table(
    const std::string& title,
    const std::vector<workloads::ExperimentResult>& results);

/// Per-phase tail latencies (p50/p95/p99/max over ranks, from the run
/// report's phase table) for one cache case — the straggler signature the
/// max-only breakdown hides.
void print_tail_table(
    const std::string& title, workloads::CacheCase cache_case,
    const std::vector<workloads::ExperimentResult>& results);

/// One row per analyzed run: bottleneck category, attributed fraction and
/// the per-category split of the end-to-end critical path.
void print_critical_path_summary(
    const std::string& title,
    const std::vector<workloads::ExperimentResult>& results);

}  // namespace e10::bench
