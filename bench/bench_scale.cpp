// Scale sweep: collective write at 2048 / 4096 / 8192 ranks.
//
// The paper's testbed stops at 512 ranks; this bench grows the same
// coll_perf collective-write point to probe where the simulated PFS hits
// its per-server ceiling (PfsParams::server_bandwidth, 2 GB/s in the
// DEEP-ER config) and how stripe lock-table traffic scales with the rank
// count. Every point runs twice — stripe-aligned file domains (64
// aggregators, lock table quiet, servers saturated) and misaligned domains
// (48 aggregators, neighbouring aggregators false-share boundary stripes)
// — and with the causal critical-path analyzer attached, so the end-to-end
// time is attributed to phases/resources rather than guessed at.
//
// Per point it reports:
//   - host wall time and the engine's deterministic self-metrics
//     (events, switches, peak ready depth) plus derived host events/sec —
//     the DES-engine throughput figures the 8192-rank acceptance gate uses
//   - virtual io time, perceived bandwidth, content checksum
//   - per-server device utilisation: bytes written, busy seconds, achieved
//     bandwidth vs the configured ceiling
//   - stripe lock-table contention: waits, total wait seconds, handoffs
//   - the critical-path bottleneck category and attributed fraction (the
//     full attribution table is printed for the largest point)
//
// Flags (shared parser, see bench_common.h): --quick runs only the
// 2048-rank point; --cases=<one case> overrides the default cache_disabled
// (the case that exercises the servers and lock table directly);
// --check-concurrency, --report=PATH, --pipeline/--two-level/... as usual.
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "obs/report.h"
#include "workloads/experiment.h"
#include "workloads/workload.h"

namespace {

using namespace e10;

struct ScalePoint {
  int ranks;
  std::array<Offset, 3> grid;  // product must equal ranks
};

/// Per-rank block stays the paper's {4, 16, 131072} x 8 B = 64 MiB; the
/// process grid grows instead, so every point writes ranks x 64 MiB.
constexpr ScalePoint kPoints[] = {
    {2048, {8, 16, 16}},
    {4096, {16, 16, 16}},
    {8192, {16, 16, 32}},
};

const obs::Json* report_counters(const workloads::ExperimentResult& result) {
  const obs::Json* metrics = result.report.find("metrics");
  return metrics != nullptr ? metrics->find("counters") : nullptr;
}

double counter_or_zero(const obs::Json* counters, const std::string& name) {
  if (counters == nullptr) return 0.0;
  const obs::Json* v = counters->find(name);
  return v != nullptr ? v->as_number() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using workloads::CacheCase;
  const auto options = bench::BenchOptions::parse(argc, argv);

  // Default to the cache-disabled case: every byte goes straight through
  // the stripe lock table to the data servers, which is what this sweep is
  // probing. --cases can select the cache cases instead.
  CacheCase cache_case = CacheCase::disabled;
  for (const CacheCase c : {CacheCase::disabled, CacheCase::enabled,
                            CacheCase::theoretical}) {
    if (options.case_selected(c)) {
      cache_case = c;
      break;
    }
  }

  // Two aggregator configurations per point, 64 MiB buffers throughout:
  //   - aligned: 64 aggregators. Every file domain is a multiple of the
  //     4 MiB stripe, so no two aggregators ever touch the same stripe and
  //     the lock table stays quiet — the configuration that isolates the
  //     per-server bandwidth ceiling.
  //   - misaligned: 48 aggregators. ranks x 64 MiB never splits into 48
  //     stripe-multiple domains, so neighbouring aggregators false-share
  //     boundary stripes every round — the configuration that exercises
  //     the stripe lock table (handoff revoke/regrant per shared stripe).
  struct Variant {
    const char* name;
    int aggregators;
  };
  constexpr Variant kVariants[] = {{"aligned", 64}, {"misaligned", 48}};
  constexpr Offset kCbBuffer = 64 * units::MiB;

  std::printf("## scale sweep: coll_perf collective write, %s, cb=64m%s\n",
              workloads::to_string(cache_case),
              options.quick ? " [QUICK: 2048 only]" : "");
  std::printf("%7s %-11s %9s %13s %11s %9s %9s %10s %8s\n", "ranks",
              "domains", "host_s", "events", "events/s", "ready_hwm",
              "virt_io_s", "bw_gib", "checksum");
  std::fflush(stdout);

  struct Run {
    ScalePoint point;
    Variant variant;
  };
  std::vector<Run> runs;
  for (const ScalePoint& point : kPoints) {
    if (options.quick && point.ranks > 2048) continue;
    for (const Variant& variant : kVariants) runs.push_back({point, variant});
  }

  obs::Json rows = obs::Json::array();
  std::string last_path_table;
  for (const Run& run : runs) {
    const ScalePoint& point = run.point;
    const Variant& variant = run.variant;
    workloads::ExperimentSpec spec;
    spec.testbed = workloads::deep_er_testbed();
    spec.testbed.compute_nodes = static_cast<std::size_t>(point.ranks) / 8;
    spec.testbed.ranks_per_node = 8;
    spec.aggregators = variant.aggregators;
    spec.cb_buffer_size = kCbBuffer;
    spec.cache_case = cache_case;
    spec.pipeline = options.pipeline;
    spec.sync_streams = options.sync_streams;
    spec.flush_coalesce = options.coalesce;
    spec.two_level = options.two_level;
    spec.workflow.base_path = "/pfs/coll_perf";
    spec.workflow.num_files = 1;  // one write point per scale, not a campaign
    spec.workflow.compute_delay = 0;
    spec.workflow.include_last_phase = false;
    spec.critical_path = true;
    spec.check_concurrency = options.check_concurrency;

    const workloads::CollPerfWorkload::Params params{point.grid,
                                                     {4, 16, 131072}, 8};
    const auto t0 = std::chrono::steady_clock::now();
    const workloads::ExperimentResult result = workloads::run_experiment(
        spec, [&params](const workloads::TestbedParams&) {
          return std::make_unique<workloads::CollPerfWorkload>(params);
        });
    const double host_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const sim::EngineStats& stats = result.engine_stats;
    const double events_per_s =
        host_s > 0 ? static_cast<double>(stats.events) / host_s : 0.0;
    const double virt_io_s = units::to_seconds(result.workflow.io_time);
    std::printf("%7d %-11s %9.2f %13llu %11.0f %9llu %9.3f %10.3f %8s\n",
                point.ranks, variant.name, host_s,
                static_cast<unsigned long long>(stats.events), events_per_s,
                static_cast<unsigned long long>(stats.max_ready_depth),
                virt_io_s, result.bandwidth_gib,
                result.content_checksum.c_str());

    // Per-server device attribution, straight from the exported counters.
    const obs::Json* counters = report_counters(result);
    obs::Json servers = obs::Json::array();
    std::printf("        %-8s %14s %10s %12s\n", "server", "bytes_written",
                "busy_s", "bw_gib/s");
    for (int s = 0;; ++s) {
      const std::string prefix =
          "pfs.server." + std::to_string(s) + ".device.";
      if (counters == nullptr ||
          counters->find(prefix + "busy_ns") == nullptr) {
        break;
      }
      const double busy_s =
          counter_or_zero(counters, prefix + "busy_ns") * 1e-9;
      const double bytes = counter_or_zero(counters, prefix + "bytes_written");
      const double bw_gib =
          busy_s > 0 ? bytes / static_cast<double>(units::GiB) / busy_s : 0.0;
      std::printf("        %-8d %14.0f %10.3f %12.3f\n", s, bytes, busy_s,
                  bw_gib);
      obs::Json server = obs::Json::object();
      server.set("server", obs::Json::number(s));
      server.set("bytes_written", obs::Json::number(bytes));
      server.set("busy_s", obs::Json::number(busy_s));
      server.set("bandwidth_gib", obs::Json::number(bw_gib));
      servers.push(std::move(server));
    }

    const double lock_waits = counter_or_zero(counters, "pfs.lock.waits");
    const double lock_wait_s =
        counter_or_zero(counters, "pfs.lock.wait_ns") * 1e-9;
    const double lock_handoffs =
        counter_or_zero(counters, "pfs.lock.handoffs");
    std::printf(
        "        locks: %.0f waits, %.3f s total wait, %.0f handoffs\n",
        lock_waits, lock_wait_s, lock_handoffs);
    std::printf("        critical path: %s (%.0f%% attributed)\n",
                result.bottleneck.c_str(),
                100.0 * result.attributed_fraction);
    if (options.check_concurrency) {
      std::printf("        concurrency: %zu races, %zu cycles\n",
                  result.analysis_races, result.analysis_cycles);
    }
    std::fflush(stdout);
    last_path_table = result.critical_path_text;

    obs::Json row = obs::Json::object();
    row.set("ranks", obs::Json::number(point.ranks));
    row.set("domains", obs::Json::str(variant.name));
    row.set("aggregators", obs::Json::number(variant.aggregators));
    row.set("cache_case", obs::Json::str(workloads::to_string(cache_case)));
    row.set("host_s", obs::Json::number(host_s));
    row.set("events", obs::Json::number(static_cast<double>(stats.events)));
    row.set("switches",
            obs::Json::number(static_cast<double>(stats.switches)));
    row.set("spawned", obs::Json::number(static_cast<double>(stats.spawned)));
    row.set("max_ready_depth",
            obs::Json::number(static_cast<double>(stats.max_ready_depth)));
    row.set("stack_reuses",
            obs::Json::number(static_cast<double>(stats.stack_reuses)));
    row.set("events_per_sec", obs::Json::number(events_per_s));
    row.set("virtual_io_time_s", obs::Json::number(virt_io_s));
    row.set("bandwidth_gib", obs::Json::number(result.bandwidth_gib));
    row.set("content_checksum", obs::Json::str(result.content_checksum));
    row.set("servers", std::move(servers));
    obs::Json locks = obs::Json::object();
    locks.set("waits", obs::Json::number(lock_waits));
    locks.set("wait_s", obs::Json::number(lock_wait_s));
    locks.set("handoffs", obs::Json::number(lock_handoffs));
    row.set("locks", std::move(locks));
    row.set("bottleneck", obs::Json::str(result.bottleneck));
    row.set("attributed_fraction",
            obs::Json::number(result.attributed_fraction));
    if (options.check_concurrency) {
      row.set("analysis_races",
              obs::Json::number(static_cast<double>(result.analysis_races)));
      row.set("analysis_cycles",
              obs::Json::number(static_cast<double>(result.analysis_cycles)));
    }
    rows.push(std::move(row));
  }

  if (!last_path_table.empty()) {
    std::printf("\n## critical-path attribution (largest point)\n%s\n",
                last_path_table.c_str());
  }
  if (!options.report_path.empty()) {
    if (const Status s = obs::write_json_file(options.report_path, rows);
        !s.is_ok()) {
      std::fprintf(stderr, "failed to write report to %s: %s\n",
                   options.report_path.c_str(), s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "report written to %s\n",
                 options.report_path.c_str());
  }
  return 0;
}
