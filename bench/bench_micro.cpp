// Substrate micro-benchmarks (google-benchmark): DES engine switch rate,
// PFS client write throughput, local-SSD cache write path, and MPI
// collective/point-to-point overheads. These establish the simulator's own
// performance envelope — how much real time a simulated experiment costs.
#include <benchmark/benchmark.h>

#include "common/units.h"
#include "mpi/world.h"
#include "workloads/testbed.h"

namespace {

using namespace e10;
using namespace e10::units;

void BM_EngineSwitch(benchmark::State& state) {
  // Two fibers ping-ponging via delays: measures one scheduler round trip.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    const std::int64_t iters = 4096;
    for (int p = 0; p < 2; ++p) {
      engine.spawn("p" + std::to_string(p), [&engine, iters] {
        for (std::int64_t i = 0; i < iters; ++i) engine.delay(1);
      });
    }
    state.ResumeTiming();
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_EngineSwitch)->Unit(benchmark::kMillisecond);

void BM_EngineSpawnTeardown(benchmark::State& state) {
  const auto fibers = state.range(0);
  for (auto _ : state) {
    sim::Engine engine;
    for (std::int64_t i = 0; i < fibers; ++i) {
      engine.spawn("p", [&engine] { engine.delay(1); });
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * fibers);
}
BENCHMARK(BM_EngineSpawnTeardown)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_PfsClientWrite(benchmark::State& state) {
  const Offset block = state.range(0) * KiB;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    net::Fabric fabric(6, net::FabricParams{});
    pfs::PfsParams params;
    params.target.jitter_sigma = 0.0;
    pfs::Pfs fs(engine, fabric, {1, 2, 3, 4}, 5, params, 1);
    state.ResumeTiming();
    engine.spawn("client", [&] {
      pfs::OpenOptions opts;
      opts.create = true;
      const auto h = fs.open("/pfs/bench", 0, opts).value();
      for (int i = 0; i < 64; ++i) {
        (void)fs.write(h, i * block, DataView::synthetic(1, 0, block));
      }
    });
    engine.run();
  }
  state.SetBytesProcessed(state.iterations() * 64 * block);
}
BENCHMARK(BM_PfsClientWrite)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_MpiAlltoall(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::Fabric fabric(static_cast<std::size_t>(ranks), net::FabricParams{});
    mpi::World world(engine, fabric,
                     mpi::Topology(static_cast<std::size_t>(ranks), 1));
    world.launch([ranks](mpi::Comm comm) {
      std::vector<Offset> send(static_cast<std::size_t>(ranks), 1);
      for (int i = 0; i < 8; ++i) (void)comm.alltoall(send, sizeof(Offset));
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 8 * ranks);
}
BENCHMARK(BM_MpiAlltoall)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_MpiPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    net::Fabric fabric(2, net::FabricParams{});
    mpi::World world(engine, fabric, mpi::Topology(2, 1));
    world.launch([](mpi::Comm comm) {
      for (int i = 0; i < 512; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 0, i, 8);
          (void)comm.recv(1, 1);
        } else {
          (void)comm.recv(0, 0);
          comm.send(0, 1, i, 8);
        }
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MpiPingPong)->Unit(benchmark::kMillisecond);

void BM_ByteStoreWrite(benchmark::State& state) {
  for (auto _ : state) {
    ByteStore store;
    for (Offset i = 0; i < 4096; ++i) {
      store.write(i * 4 * MiB, DataView::synthetic(1, i * 4 * MiB, 4 * MiB));
    }
    benchmark::DoNotOptimize(store.extent_end());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ByteStoreWrite)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
