// Ablation benches for the design choices DESIGN.md calls out:
//   A1 stripe-aligned vs even file domains (ufs vs beegfs driver)
//   A2 flush_immediate vs flush_onclose
//   A3 ind_wr_buffer_size sweep (sync staging granularity)
//   A4 aggregator / compute-node ratio vs sync hiding
//   A5 compute-delay sweep (the C vs Ts crossover of Eq. 1)
//   A6 coherent-mode locking overhead
//   A7 standard vs modified (deferred-close) workflow — the Fig. 3 change
//
// Run with --quick for the scaled-down testbed; each ablation pins the
// parameters the paper used except the one it varies.
#include <cstdio>

#include "bench/bench_common.h"
#include "workloads/workload.h"

namespace {

using namespace e10;
using namespace e10::units;
using namespace e10::workloads;

struct Knobs {
  int aggregators;
  Offset cb;
  int files;
  Time compute;
  TestbedParams testbed;
};

ExperimentResult run_case(const Knobs& knobs, CacheCase cache_case,
                          const std::string& base_path,
                          void (*tweak)(WorkflowParams&, mpi::Info&)) {
  ExperimentSpec spec;
  spec.testbed = knobs.testbed;
  spec.aggregators = knobs.aggregators;
  spec.cb_buffer_size = knobs.cb;
  spec.cache_case = cache_case;
  spec.workflow.base_path = base_path;
  spec.workflow.num_files = knobs.files;
  spec.workflow.compute_delay = knobs.compute;
  spec.workflow.include_last_phase = true;

  Platform platform(spec.testbed);
  IorWorkload workload;
  WorkflowParams workflow = spec.workflow;
  workflow.hints = experiment_hints(spec);
  workflow.deferred_close = cache_case != CacheCase::disabled;
  if (tweak != nullptr) tweak(workflow, workflow.hints);

  ExperimentResult result;
  result.combo = combo_label(spec);
  result.cache_case = cache_case;
  result.workflow = run_workflow(platform, workload, workflow);
  result.bandwidth_gib = result.workflow.bandwidth_gib;
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    const auto phase = static_cast<prof::Phase>(p);
    result.breakdown[phase] = platform.profiler.max_over_ranks(phase);
  }
  return result;
}

Knobs default_knobs(const bench::BenchOptions& options) {
  Knobs knobs;
  knobs.testbed = bench::testbed_for(options);
  knobs.aggregators = options.quick ? 16 : 64;
  knobs.cb = 4 * MiB;
  knobs.files = options.files;
  knobs.compute = bench::compute_delay_for(options);
  return knobs;
}

void ablation_filedomains(const bench::BenchOptions& options) {
  std::printf("\n## A1: file-domain partitioning (even vs stripe-aligned)\n");
  std::printf("%-22s %12s %14s %14s\n", "driver", "BW [GiB/s]", "lock_waits",
              "lock_handoffs");
  Knobs knobs = default_knobs(options);
  // A non-power-of-two aggregator count makes the even (ufs) split land
  // mid-stripe, so neighbouring aggregators false-share stripes; the
  // beegfs driver aligns domains and avoids it (paper footnote 1).
  knobs.aggregators = options.quick ? 6 : 24;
  for (const char* driver : {"ufs", "beegfs"}) {
    Platform platform(knobs.testbed);
    IorWorkload workload;
    ExperimentSpec spec;
    spec.testbed = knobs.testbed;
    spec.aggregators = knobs.aggregators;
    spec.cb_buffer_size = knobs.cb;
    spec.cache_case = CacheCase::disabled;
    WorkflowParams workflow;
    workflow.base_path = std::string(driver) + ":/pfs/a1";
    workflow.num_files = knobs.files;
    workflow.compute_delay = knobs.compute;
    workflow.deferred_close = false;
    workflow.hints = experiment_hints(spec);
    const WorkflowResult result = run_workflow(platform, workload, workflow);
    std::printf("%-22s %12.2f %14llu %14llu\n", driver, result.bandwidth_gib,
                static_cast<unsigned long long>(platform.pfs.stats().lock_waits),
                static_cast<unsigned long long>(
                    platform.pfs.stats().lock_handoffs));
    std::fflush(stdout);
  }
}

void ablation_flushpolicy(const bench::BenchOptions& options) {
  std::printf("\n## A2: flush policy (immediate vs onclose)\n");
  std::printf("%-22s %12s %18s\n", "e10_cache_flush_flag", "BW [GiB/s]",
              "not_hidden_sync [s]");
  const Knobs knobs = default_knobs(options);
  static const char* flush_flag;
  for (const char* flag : {"flush_immediate", "flush_onclose"}) {
    flush_flag = flag;
    const auto result = run_case(
        knobs, CacheCase::enabled, "/pfs/a2",
        [](WorkflowParams&, mpi::Info& hints) {
          hints.set("e10_cache_flush_flag", flush_flag);
        });
    std::printf("%-22s %12.2f %18.2f\n", flag, result.bandwidth_gib,
                units::to_seconds(
                    result.breakdown.at(prof::Phase::not_hidden_sync)));
    std::fflush(stdout);
  }
}

void ablation_syncbuffer(const bench::BenchOptions& options) {
  std::printf("\n## A3: ind_wr_buffer_size (sync staging granularity)\n");
  std::printf("%-22s %12s %18s\n", "ind_wr_buffer_size", "BW [GiB/s]",
              "not_hidden_sync [s]");
  const Knobs knobs = default_knobs(options);
  static Offset buffer_bytes;
  for (const Offset size : {64 * KiB, 256 * KiB, 512 * KiB, 2 * MiB, 8 * MiB}) {
    buffer_bytes = size;
    const auto result = run_case(
        knobs, CacheCase::enabled, "/pfs/a3",
        [](WorkflowParams&, mpi::Info& hints) {
          hints.set("ind_wr_buffer_size", std::to_string(buffer_bytes));
        });
    std::printf("%-22s %12.2f %18.2f\n", format_bytes(size).c_str(),
                result.bandwidth_gib,
                units::to_seconds(
                    result.breakdown.at(prof::Phase::not_hidden_sync)));
    std::fflush(stdout);
  }
}

void ablation_aggratio(const bench::BenchOptions& options) {
  std::printf("\n## A4: aggregator / node ratio vs sync hiding\n");
  std::printf("%-12s %12s %18s %14s\n", "aggregators", "BW [GiB/s]",
              "not_hidden_sync [s]", "TBW [GiB/s]");
  Knobs knobs = default_knobs(options);
  const int max_aggs = static_cast<int>(knobs.testbed.compute_nodes);
  for (int aggregators = max_aggs / 8; aggregators <= max_aggs;
       aggregators *= 2) {
    knobs.aggregators = aggregators;
    const auto enabled = run_case(knobs, CacheCase::enabled, "/pfs/a4",
                                  nullptr);
    const auto tbw = run_case(knobs, CacheCase::theoretical, "/pfs/a4t",
                              nullptr);
    std::printf("%-12d %12.2f %18.2f %14.2f\n", aggregators,
                enabled.bandwidth_gib,
                units::to_seconds(
                    enabled.breakdown.at(prof::Phase::not_hidden_sync)),
                tbw.bandwidth_gib);
    std::fflush(stdout);
  }
}

void ablation_computedelay(const bench::BenchOptions& options) {
  std::printf("\n## A5: compute delay sweep (Eq. 1 crossover)\n");
  std::printf("%-14s %12s %18s\n", "compute [s]", "BW [GiB/s]",
              "not_hidden_sync [s]");
  Knobs knobs = default_knobs(options);
  // Few aggregators: Ts is large, so the crossover is visible.
  knobs.aggregators = static_cast<int>(knobs.testbed.compute_nodes) / 8;
  for (const double delay : {0.0, 7.5, 15.0, 30.0, 60.0}) {
    knobs.compute = units::seconds_f(options.quick ? delay / 8.0 : delay);
    const auto result = run_case(knobs, CacheCase::enabled, "/pfs/a5",
                                 nullptr);
    std::printf("%-14.1f %12.2f %18.2f\n",
                units::to_seconds(knobs.compute), result.bandwidth_gib,
                units::to_seconds(
                    result.breakdown.at(prof::Phase::not_hidden_sync)));
    std::fflush(stdout);
  }
}

void ablation_coherent(const bench::BenchOptions& options) {
  std::printf("\n## A6: coherent mode (extent locking) overhead\n");
  std::printf("%-12s %12s\n", "e10_cache", "BW [GiB/s]");
  const Knobs knobs = default_knobs(options);
  static const char* cache_mode;
  for (const char* mode : {"enable", "coherent"}) {
    cache_mode = mode;
    const auto result = run_case(
        knobs, CacheCase::enabled, "/pfs/a6",
        [](WorkflowParams&, mpi::Info& hints) {
          hints.set("e10_cache", cache_mode);
        });
    std::printf("%-12s %12.2f\n", mode, result.bandwidth_gib);
    std::fflush(stdout);
  }
}

void ablation_workflow(const bench::BenchOptions& options) {
  std::printf("\n## A7: standard vs modified workflow (Fig. 3)\n");
  std::printf("%-18s %12s %18s\n", "workflow", "BW [GiB/s]",
              "not_hidden_sync [s]");
  const Knobs knobs = default_knobs(options);
  static bool defer;
  for (const bool deferred : {false, true}) {
    defer = deferred;
    const auto result = run_case(
        knobs, CacheCase::enabled, "/pfs/a7",
        [](WorkflowParams& workflow, mpi::Info&) {
          workflow.deferred_close = defer;
        });
    std::printf("%-18s %12.2f %18.2f\n",
                deferred ? "modified(defer)" : "standard",
                result.bandwidth_gib,
                units::to_seconds(
                    result.breakdown.at(prof::Phase::not_hidden_sync)));
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = e10::bench::BenchOptions::parse(argc, argv);
  std::printf("## Ablations%s\n", options.quick ? " [QUICK scale]" : "");
  ablation_filedomains(options);
  ablation_flushpolicy(options);
  ablation_syncbuffer(options);
  ablation_aggratio(options);
  ablation_computedelay(options);
  ablation_coherent(options);
  ablation_workflow(options);
  return 0;
}
