// DES engine hot-path benchmark: host-side cost of the scheduler itself.
//
// Runs the paper's 512-rank coll_perf sweep (the same specs bench_collperf
// executes) and reports, per (combo, cache case):
//   - host wall time for the whole experiment (the only wall-clock use in
//     the tree lives here in the bench layer; src/ stays deterministic)
//   - the engine's deterministic self-metrics (events, fiber switches,
//     spawned processes, peak ready depth, recycled fiber stacks)
//   - host events/sec, the engine throughput figure the PR-level
//     comparisons in results/BENCH_engine.json track
//   - the run's virtual io_time, bandwidth and content checksum, so two
//     builds can be diffed for bit-identical simulation results while
//     comparing host time.
//
// Flags are shared with the other benches (see bench_common.h); typical:
//   bench_engine --files=4 --report=results/engine_report.json
//   bench_engine --quick --combos=8_4m --cases=enabled
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "obs/report.h"
#include "workloads/experiment.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace e10;
  using workloads::CacheCase;
  const auto options = bench::BenchOptions::parse(argc, argv);
  const auto sweep = bench::sweep_for(options);

  std::printf("## engine hot path: coll_perf sweep%s\n",
              options.quick ? " [QUICK scale]" : "");
  std::printf("%-10s %-18s %9s %12s %12s %11s %10s %8s %12s\n", "combo",
              "case", "host_s", "events", "switches", "events/s",
              "ready_hwm", "spawned", "virt_io_s");
  std::fflush(stdout);

  obs::Json rows = obs::Json::array();
  double total_host_s = 0.0;
  for (const CacheCase cache_case :
       {CacheCase::disabled, CacheCase::enabled, CacheCase::theoretical}) {
    if (!options.case_selected(cache_case)) continue;
    for (const auto& [aggregators, cb] : sweep) {
      workloads::ExperimentSpec spec;
      spec.testbed = bench::testbed_for(options);
      spec.aggregators = aggregators;
      spec.cb_buffer_size = cb;
      spec.cache_case = cache_case;
      spec.pipeline = options.pipeline;
      spec.sync_streams = options.sync_streams;
      spec.flush_coalesce = options.coalesce;
      spec.two_level = options.two_level;
      spec.workflow.base_path = "/pfs/coll_perf";
      spec.workflow.num_files = options.files;
      spec.workflow.compute_delay = bench::compute_delay_for(options);
      spec.workflow.include_last_phase = false;
      spec.check_concurrency = options.check_concurrency;
      if (!options.combo_selected(workloads::combo_label(spec))) continue;

      const auto t0 = std::chrono::steady_clock::now();
      const workloads::ExperimentResult result = workloads::run_experiment(
          spec, [](const workloads::TestbedParams& testbed) {
            const int ranks = static_cast<int>(testbed.compute_nodes *
                                               testbed.ranks_per_node);
            return std::make_unique<workloads::CollPerfWorkload>(
                workloads::collperf_paper_params(ranks));
          });
      const double host_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      total_host_s += host_s;

      const sim::EngineStats& stats = result.engine_stats;
      const double events_per_s =
          host_s > 0 ? static_cast<double>(stats.events) / host_s : 0.0;
      const double virt_io_s = units::to_seconds(result.workflow.io_time);
      std::printf(
          "%-10s %-18s %9.3f %12llu %12llu %11.0f %10llu %8llu %12.3f\n",
          result.combo.c_str(), workloads::to_string(cache_case), host_s,
          static_cast<unsigned long long>(stats.events),
          static_cast<unsigned long long>(stats.switches), events_per_s,
          static_cast<unsigned long long>(stats.max_ready_depth),
          static_cast<unsigned long long>(stats.spawned), virt_io_s);
      std::fflush(stdout);
      if (options.check_concurrency &&
          (result.analysis_races > 0 || result.analysis_cycles > 0)) {
        std::fprintf(stderr, "  concurrency: %zu races, %zu cycles in %s %s\n",
                     result.analysis_races, result.analysis_cycles,
                     workloads::to_string(cache_case), result.combo.c_str());
      }

      obs::Json row = obs::Json::object();
      row.set("combo", obs::Json::str(result.combo));
      row.set("cache_case",
              obs::Json::str(workloads::to_string(cache_case)));
      row.set("host_s", obs::Json::number(host_s));
      row.set("events",
              obs::Json::number(static_cast<double>(stats.events)));
      row.set("switches",
              obs::Json::number(static_cast<double>(stats.switches)));
      row.set("spawned",
              obs::Json::number(static_cast<double>(stats.spawned)));
      row.set("max_ready_depth",
              obs::Json::number(static_cast<double>(stats.max_ready_depth)));
      row.set("stack_reuses",
              obs::Json::number(static_cast<double>(stats.stack_reuses)));
      row.set("events_per_sec", obs::Json::number(events_per_s));
      row.set("virtual_io_time_s", obs::Json::number(virt_io_s));
      row.set("bandwidth_gib", obs::Json::number(result.bandwidth_gib));
      row.set("content_checksum", obs::Json::str(result.content_checksum));
      if (options.check_concurrency) {
        row.set("analysis_races",
                obs::Json::number(static_cast<double>(result.analysis_races)));
        row.set("analysis_cycles", obs::Json::number(static_cast<double>(
                                       result.analysis_cycles)));
      }
      rows.push(std::move(row));
    }
  }
  std::printf("\ntotal host time: %.3f s\n", total_host_s);
  std::fflush(stdout);

  if (!options.report_path.empty()) {
    if (const Status s = obs::write_json_file(options.report_path, rows);
        !s.is_ok()) {
      std::fprintf(stderr, "failed to write report to %s: %s\n",
                   options.report_path.c_str(), s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "report written to %s\n",
                 options.report_path.c_str());
  }
  return 0;
}
