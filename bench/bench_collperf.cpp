// Reproduces Fig. 4 (coll_perf perceived bandwidth) and Figs. 5/6
// (coll_perf collective I/O contribution breakdown, cache enabled /
// disabled). 512 MPI processes on 64 nodes write 4 files x 32 GiB with a
// 30 s compute delay; the last write phase's residual sync is excluded
// (paper §IV-B).
#include "bench/bench_common.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace e10;
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::FigureSpec figure;
  figure.benchmark = "coll_perf";
  figure.figure = "Fig. 4 + Figs. 5/6";
  figure.include_last_phase = false;
  figure.factory = [](const workloads::TestbedParams& testbed) {
    const int ranks =
        static_cast<int>(testbed.compute_nodes * testbed.ranks_per_node);
    return std::make_unique<workloads::CollPerfWorkload>(
        workloads::collperf_paper_params(ranks));
  };
  (void)bench::run_figure(figure, options);
  return 0;
}
