// bench_compare: the never-slower perf gate.
//
// Diffs two performance documents (bench --report= run-report arrays or
// checked-in results/BENCH_*.json files) point by point and fails when any
// point regressed beyond the threshold, with per-phase attribution of where
// the lost time went. CI runs this against the checked-in baselines in
// results/ci/ after every smoke run; see docs/observability.md.
//
// Usage:
//   bench_compare [--threshold=0.02] [--strict-checksums] BASELINE CANDIDATE
//
// Exit status: 0 = no regression, 1 = regression (or checksum mismatch with
// --strict-checksums), 2 = usage or parse error.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/compare.h"
#include "obs/json.h"

namespace {

e10::Result<e10::obs::Json> load_json(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return e10::Status::error(e10::Errc::io_error,
                              "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return e10::obs::Json::parse(buffer.str());
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold=FRACTION] [--strict-checksums] "
               "BASELINE CANDIDATE\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  e10::obs::CompareOptions options;
  std::string baseline_path;
  std::string candidate_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      options.threshold = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || options.threshold < 0) {
        std::fprintf(stderr, "--threshold: expected a non-negative number\n");
        return 2;
      }
    } else if (arg == "--strict-checksums") {
      options.strict_checksums = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  // A CI gate must never crash on its inputs: any malformed document is a
  // diagnostic plus exit 2, and an unexpected exception from the JSON layer
  // is downgraded to the same rather than aborting the pipeline step.
  try {
    const auto baseline = load_json(baseline_path);
    if (!baseline.is_ok()) {
      std::fprintf(stderr, "baseline %s: %s\n", baseline_path.c_str(),
                   baseline.status().message().c_str());
      return 2;
    }
    const auto candidate = load_json(candidate_path);
    if (!candidate.is_ok()) {
      std::fprintf(stderr, "candidate %s: %s\n", candidate_path.c_str(),
                   candidate.status().message().c_str());
      return 2;
    }

    const auto report =
        e10::obs::compare_runs(baseline.value(), candidate.value(), options);
    if (!report.is_ok()) {
      std::fprintf(stderr, "%s\n", report.status().message().c_str());
      return 2;
    }
    std::fputs(e10::obs::compare_table(report.value(), options).c_str(),
               stdout);
    return report.value().ok(options) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: internal error: %s\n", e.what());
    return 2;
  }
}
