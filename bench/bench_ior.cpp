// Reproduces Fig. 9 (IOR perceived bandwidth) and Fig. 10 (IOR collective
// I/O contribution breakdown, cache enabled). Each of the 512 processes
// writes one 8 MiB block per each of 8 segments (32 GiB per file). Unlike
// coll_perf/Flash-IO, IOR *includes* the last write phase's non-hidden
// synchronisation cost (paper §IV-D), which caps the peak perceived
// bandwidth well below the theoretical value.
#include "bench/bench_common.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace e10;
  const auto options = bench::BenchOptions::parse(argc, argv);
  bench::FigureSpec figure;
  figure.benchmark = "ior";
  figure.figure = "Fig. 9 + Fig. 10";
  figure.include_last_phase = true;
  figure.factory = [](const workloads::TestbedParams&) {
    return std::make_unique<workloads::IorWorkload>();
  };
  (void)bench::run_figure(figure, options);
  return 0;
}
